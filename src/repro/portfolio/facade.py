"""`color_graph` / `color_edges`: the auto-tuning front door of the repo.

Both entry points take a graph (legacy :class:`Network` or CSR
:class:`FastNetwork`), consult the measured :class:`CostModel`, and pick

* the **algorithm** — the paper's Legal-Color pipeline by default for
  edges (and for vertices when a neighborhood-independence bound ``c`` is
  supplied), the Luby randomized baseline for general vertex coloring;
* the **engine** — ``"batched"`` versus the ``"vectorized"`` numpy kernels,
  by predicted wall seconds for the instance's CSR size;
* the **quality preset** — the Theorem 4.8 palette/rounds tradeoff point,
  by walking the presets from best palette to fastest until the predicted
  round count fits the caller's ``budget``;
* the **route** — direct (Theorem 5.5) versus Lemma 5.2 simulation for
  edge coloring, by predicted cost.

Every decision can be overridden by passing the corresponding kwarg
(``algorithm=``, ``engine=``, ``quality=``, ``route=``); overridden knobs
are passed through untouched and recorded in ``result.decision.overrides``.
The returned :class:`PortfolioResult` is one normalized shape — color
mapping + dense ``color_column`` + palette bound + :class:`RunMetrics` +
the :class:`PortfolioDecision` taken — regardless of which algorithm ran.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.greedy_reduction import greedy_reduction_edge_coloring
from repro.baselines.luby_random import luby_edge_coloring, luby_vertex_coloring
from repro.baselines.panconesi_rizzi import panconesi_rizzi_edge_coloring
from repro.core.edge_coloring import color_edges as core_color_edges
from repro.core.legal_coloring import color_vertices as core_color_vertices
from repro.exceptions import InvalidParameterError
from repro.local_model import kernels
from repro.local_model.fast_network import fast_view
from repro.portfolio.cost_model import CostModel
from repro.portfolio.result import PortfolioDecision, PortfolioResult
from repro.resilience.degrade import run_with_degradation
from repro.verification.coloring import NetworkLike

VERTEX_ALGORITHMS = ("legal-color", "luby")
EDGE_ALGORITHMS = ("legal-color", "panconesi-rizzi", "greedy-reduction", "luby")


def _invoke_degradable(invoke, engine: str, reasons: dict):
    """Run ``invoke(engine)`` under the engine degradation chain.

    On an :class:`~repro.exceptions.EngineFailure` the call is retried on the
    next bit-identical engine down the chain (compiled -> vectorized ->
    batched -> reference).  A degradation is narrated in ``reasons["engine"]``
    and stamped on the result's metrics, so the decision record never claims
    an engine that did not actually produce the coloring.
    """
    outcome = run_with_degradation(invoke, engine)
    if outcome.degraded:
        failed = ", ".join(name for name, _ in outcome.failures)
        reasons["engine"] = (
            reasons.get("engine", "")
            + f"; degraded to {outcome.engine!r} after engine failure on: {failed}"
        )
        outcome.record_on_metrics(outcome.result.metrics)
    return outcome


def _csr_entries(fast) -> int:
    """Directed adjacency entries plus nodes: the per-round work unit."""
    return int(fast.degrees_np.sum()) + fast.num_nodes


def _line_csr_entries(fast) -> int:
    """The CSR size of ``L(G)``, straight from ``G``'s degree column.

    An edge ``{u, v}`` has ``d(u) + d(v) - 2`` line-graph neighbors, so the
    directed entries of ``L(G)`` total ``sum_v d(v)^2 - 2|E|``; adding the
    ``|E|`` line-graph nodes gives the work unit without building ``L(G)``.
    """
    degrees = fast.degrees_np.astype(np.int64)
    num_edges = int(degrees.sum()) // 2
    return int((degrees * degrees).sum()) - 2 * num_edges + num_edges


def _decide_engine(model: CostModel, entries: int, override: Optional[str]):
    predicted = {
        "engine_batched_seconds": model.predict_engine_seconds("batched", entries),
        "engine_vectorized_seconds": model.predict_engine_seconds("vectorized", entries),
    }
    backend = kernels.backend_name()
    if model.has_engine("compiled"):
        predicted["engine_compiled_seconds"] = model.predict_engine_seconds(
            "compiled", entries
        )
    if override is not None:
        return override, "engine pinned by caller", predicted
    engine = model.choose_engine(entries, compiled_available=backend is not None)
    reason = (
        f"predicted {predicted['engine_vectorized_seconds']:.4f}s vectorized vs "
        f"{predicted['engine_batched_seconds']:.4f}s batched on {entries} CSR entries"
    )
    if "engine_compiled_seconds" in predicted:
        reason += (
            f"; compiled predicted {predicted['engine_compiled_seconds']:.4f}s "
            + (
                f"on kernel backend {backend!r}"
                if backend is not None
                else "but no kernel backend resolved"
            )
        )
    return engine, reason, predicted


def _decide_quality(
    model: CostModel,
    delta: int,
    n: int,
    budget: Optional[float],
    epsilon: float,
    override: Optional[str],
):
    if override is not None:
        return override, "quality pinned by caller", {}
    quality = model.choose_quality(delta, n, budget, epsilon=epsilon)
    predicted = {
        "rounds_" + name: model.predict_rounds(name, delta, n, epsilon=epsilon)
        for name in ("linear", "subpolynomial", "superlinear")
    }
    if budget is None:
        reason = "no round budget: best palette guarantee (linear)"
    elif predicted["rounds_" + quality] <= budget:
        reason = (
            f"best palette with predicted rounds "
            f"{predicted['rounds_' + quality]:.1f} <= budget {budget:g}"
        )
    else:
        reason = f"budget {budget:g} infeasible: fastest preset chosen"
    return quality, reason, predicted


def color_graph(
    graph: NetworkLike,
    *,
    c: Optional[int] = None,
    quality: Optional[str] = None,
    budget: Optional[float] = None,
    algorithm: Optional[str] = None,
    engine: Optional[str] = None,
    epsilon: float = 0.75,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
) -> PortfolioResult:
    """Vertex-color ``graph``, choosing algorithm/engine/preset automatically.

    Parameters
    ----------
    graph:
        ``Network | FastNetwork``.
    c:
        Neighborhood-independence bound, when known.  Supplying it unlocks
        the paper's deterministic Legal-Color pipeline; without it the
        portfolio falls back to the Luby randomized ``Delta + 1`` coloring.
    quality:
        Pin a Theorem 4.8 preset (``"linear"`` / ``"superlinear"`` /
        ``"subpolynomial"``) instead of letting the budget search choose.
        Only meaningful for the Legal-Color algorithm.
    budget:
        Maximum acceptable number of communication rounds.  The portfolio
        keeps the best palette guarantee whose predicted rounds fit.
    algorithm:
        ``"legal-color"`` or ``"luby"`` to bypass the algorithm choice.
    engine:
        Execution engine override (``"reference"`` / ``"batched"`` /
        ``"vectorized"`` / ``"compiled"``).
    epsilon:
        Exponent knob forwarded to the Legal-Color presets.
    seed:
        Random seed for the Luby baseline.
    cost_model:
        A :class:`CostModel` to decide with (default: the committed
        calibration record).
    """
    model = cost_model if cost_model is not None else CostModel.default()
    fast = fast_view(graph)
    overrides = tuple(
        name
        for name, value in (
            ("algorithm", algorithm),
            ("engine", engine),
            ("quality", quality),
        )
        if value is not None
    )

    reasons = {}
    predicted = {}
    if algorithm is None:
        algorithm = "legal-color" if c is not None else "luby"
        reasons["algorithm"] = (
            "independence bound supplied: deterministic Legal-Color"
            if c is not None
            else "no independence bound: Luby randomized Delta+1"
        )
    else:
        reasons["algorithm"] = "algorithm pinned by caller"
    if algorithm not in VERTEX_ALGORITHMS:
        raise InvalidParameterError(
            f"unknown vertex algorithm {algorithm!r}; expected one of {VERTEX_ALGORITHMS}"
        )
    if algorithm == "legal-color" and c is None:
        raise InvalidParameterError(
            "algorithm 'legal-color' needs the neighborhood-independence bound c"
        )
    if algorithm == "luby" and quality is not None:
        raise InvalidParameterError(
            "quality presets only apply to the Legal-Color algorithm"
        )

    engine, reasons["engine"], engine_predicted = _decide_engine(
        model, _csr_entries(fast), engine
    )
    predicted.update(engine_predicted)

    if algorithm == "legal-color":
        quality, reasons["quality"], quality_predicted = _decide_quality(
            model, fast.max_degree, max(2, fast.num_nodes), budget, epsilon, quality
        )
        predicted.update(quality_predicted)
        chosen_quality = quality
        outcome = _invoke_degradable(
            lambda eng: core_color_vertices(
                fast, c, quality=chosen_quality, epsilon=epsilon, engine=eng
            ),
            engine,
            reasons,
        )
    else:
        outcome = _invoke_degradable(
            lambda eng: luby_vertex_coloring(fast, seed=seed, engine=eng),
            engine,
            reasons,
        )
    raw = outcome.result

    decision = PortfolioDecision(
        algorithm=algorithm,
        engine=outcome.engine,
        quality=quality,
        route=None,
        reasons=reasons,
        predicted=predicted,
        overrides=overrides,
        model_source=model.source,
        kernel_backend=kernels.backend_name(),
        kernel_threads=kernels.get_num_threads(),
        degraded_from=outcome.degraded_from,
    )
    return PortfolioResult(
        colors=raw.colors,
        palette=raw.palette,
        metrics=raw.metrics,
        decision=decision,
        color_column=raw.color_column,
        raw=raw,
    )


def color_edges(
    graph: NetworkLike,
    *,
    quality: Optional[str] = None,
    budget: Optional[float] = None,
    algorithm: Optional[str] = None,
    route: Optional[str] = None,
    engine: Optional[str] = None,
    epsilon: float = 0.75,
    use_auxiliary_coloring: bool = True,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
) -> PortfolioResult:
    """Edge-color ``graph``, choosing algorithm/engine/preset/route automatically.

    The knobs mirror :func:`color_graph`; additionally ``route`` pins the
    direct (Theorem 5.5) or Lemma 5.2 simulation implementation, and
    ``algorithm`` may name one of the baselines (``"panconesi-rizzi"``,
    ``"greedy-reduction"``, ``"luby"``) instead of the paper's
    ``"legal-color"`` pipeline.
    """
    model = cost_model if cost_model is not None else CostModel.default()
    fast = fast_view(graph)
    overrides = tuple(
        name
        for name, value in (
            ("algorithm", algorithm),
            ("engine", engine),
            ("quality", quality),
            ("route", route),
        )
        if value is not None
    )

    reasons = {}
    predicted = {}
    if algorithm is None:
        algorithm = "legal-color"
        reasons["algorithm"] = "paper's Legal-Color pipeline (default)"
    else:
        reasons["algorithm"] = "algorithm pinned by caller"
    if algorithm not in EDGE_ALGORITHMS:
        raise InvalidParameterError(
            f"unknown edge algorithm {algorithm!r}; expected one of {EDGE_ALGORITHMS}"
        )
    if algorithm != "legal-color":
        if route is not None:
            raise InvalidParameterError(
                f"route only applies to algorithm 'legal-color', not {algorithm!r}"
            )
        if quality is not None:
            raise InvalidParameterError(
                "quality presets only apply to the Legal-Color algorithm"
            )

    # All four algorithms do their work on L(G), so the engine decision is
    # driven by the line graph's CSR size (computable from G's degrees).
    line_entries = _line_csr_entries(fast)
    engine, reasons["engine"], engine_predicted = _decide_engine(
        model, line_entries, engine
    )
    predicted.update(engine_predicted)

    if algorithm == "legal-color":
        delta_line = max(1, 2 * fast.max_degree - 2) if fast.max_degree else 1
        quality, reasons["quality"], quality_predicted = _decide_quality(
            model, delta_line, max(2, fast.num_nodes), budget, epsilon, quality
        )
        predicted.update(quality_predicted)
        predicted["route_direct_seconds"] = model.predict_route_seconds(
            "direct", line_entries
        )
        predicted["route_simulation_seconds"] = model.predict_route_seconds(
            "simulation", line_entries
        )
        if route is None:
            route = model.choose_route(line_entries)
            reasons["route"] = (
                f"predicted {predicted['route_direct_seconds']:.4f}s direct vs "
                f"{predicted['route_simulation_seconds']:.4f}s simulation"
            )
        else:
            reasons["route"] = "route pinned by caller"
        chosen_quality, chosen_route = quality, route
        outcome = _invoke_degradable(
            lambda eng: core_color_edges(
                fast,
                quality=chosen_quality,
                epsilon=epsilon,
                route=chosen_route,
                use_auxiliary_coloring=use_auxiliary_coloring,
                engine=eng,
            ),
            engine,
            reasons,
        )
    elif algorithm == "panconesi-rizzi":
        outcome = _invoke_degradable(
            lambda eng: panconesi_rizzi_edge_coloring(fast, engine=eng),
            engine,
            reasons,
        )
    elif algorithm == "greedy-reduction":
        outcome = _invoke_degradable(
            lambda eng: greedy_reduction_edge_coloring(fast, engine=eng),
            engine,
            reasons,
        )
    else:
        outcome = _invoke_degradable(
            lambda eng: luby_edge_coloring(fast, seed=seed, engine=eng),
            engine,
            reasons,
        )
    raw = outcome.result

    decision = PortfolioDecision(
        algorithm=algorithm,
        engine=outcome.engine,
        quality=quality,
        route=route if algorithm == "legal-color" else None,
        reasons=reasons,
        predicted=predicted,
        overrides=overrides,
        model_source=model.source,
        kernel_backend=kernels.backend_name(),
        kernel_threads=kernels.get_num_threads(),
        degraded_from=outcome.degraded_from,
    )
    return PortfolioResult(
        colors=raw.edge_colors,
        palette=raw.palette,
        metrics=raw.metrics,
        decision=decision,
        color_column=raw.color_column,
        raw=raw,
    )
