"""The measured cost model behind the portfolio's per-instance decisions.

The model is deliberately small: three families of coefficients, all
calibrated offline by ``benchmarks/bench_portfolio.py`` and persisted to
``benchmarks/results/portfolio_model.json`` next to the other committed
benchmark records.

* **Engine** — end-to-end seconds per CSR entry for the batched per-node
  path versus the vectorized kernels versus the compiled kernel backend
  (the latter two pay a fixed setup overhead but a far smaller per-entry
  cost).  The crossover is what flips the engine decision from the
  ``"batched"`` default to ``"vectorized"`` — or to ``"compiled"``, when
  the machine actually resolved a kernel backend — on large instances.
* **Route** — seconds per line-graph CSR entry for the direct
  (Theorem 5.5) versus the Lemma 5.2 simulation route of ``color_edges``.
* **Rounds** — one fitted multiplier per Theorem 4.8 quality preset on top
  of the analytic round shapes (``Delta^eps + log* n``,
  ``log Delta + log* n``, ``(log Delta)^{1+eta} + log* n``), used to pick
  the best palette whose predicted round count fits a caller's ``budget``.

``CostModel.default()`` loads the committed record when the repository
checkout is present and falls back to the embedded snapshot of the same
numbers otherwise, so the portfolio works in an installed package too.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

from repro.exceptions import InvalidParameterError
from repro.primitives.numbers import log_star

#: Quality presets ordered from best palette guarantee (fewest colors,
#: slowest) to fastest (most colors).  The budget search walks this order
#: and keeps the first preset whose predicted rounds fit.
QUALITY_ORDER = ("linear", "subpolynomial", "superlinear")

#: Embedded snapshot of ``benchmarks/results/portfolio_model.json`` — the
#: calibration numbers recorded by ``bench_portfolio.py`` on the reference
#: machine.  Kept in sync by the benchmark's ``--record`` run.
DEFAULT_MODEL = {
    "engine": {
        "batched_us_per_entry": 4.7111,
        "vectorized_us_per_entry": 0.6881,
        "vectorized_overhead_us": 10848.0,
        "compiled_us_per_entry": 0.5691,
        "compiled_overhead_us": 9199.9,
    },
    "route": {
        "direct_us_per_line_entry": 0.6334,
        "simulation_us_per_line_entry": 0.4995,
    },
    "rounds": {
        "linear": {"coeff": 15.238, "const": 0.0},
        "subpolynomial": {"coeff": 6.877, "const": 0.0},
        "superlinear": {"coeff": 13.515, "const": 0.0},
    },
}

_COMMITTED_RECORD = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "portfolio_model.json"
)


def quality_round_shape(quality: str, delta: int, n: int, epsilon: float = 0.75) -> float:
    """The analytic Theorem 4.8 round shape of ``quality`` (unit coefficient)."""
    delta = max(2, delta)
    if quality == "linear":
        return float(delta**epsilon + log_star(n))
    if quality == "superlinear":
        return float(math.log2(delta) + log_star(n))
    if quality == "subpolynomial":
        return float(math.log2(delta) ** (1.0 + epsilon) + log_star(n))
    raise InvalidParameterError(f"unknown quality {quality!r}")


@dataclass(frozen=True)
class CostModel:
    """Calibrated decision coefficients (see the module docstring)."""

    engine: Mapping[str, float]
    route: Mapping[str, float]
    rounds: Mapping[str, Mapping[str, float]]
    source: str = "defaults"
    extras: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mapping(cls, data: Mapping, source: str = "mapping") -> "CostModel":
        for section in ("engine", "route", "rounds"):
            if section not in data:
                raise InvalidParameterError(
                    f"cost model is missing its {section!r} section"
                )
        extras = {
            key: value
            for key, value in data.items()
            if key not in ("engine", "route", "rounds")
        }
        return cls(
            engine=dict(data["engine"]),
            route=dict(data["route"]),
            rounds={key: dict(value) for key, value in data["rounds"].items()},
            source=source,
            extras=extras,
        )

    @classmethod
    def from_json(cls, path) -> "CostModel":
        path = Path(path)
        with path.open() as handle:
            return cls.from_mapping(json.load(handle), source=str(path))

    @classmethod
    def default(cls) -> "CostModel":
        """The committed calibration record, or its embedded snapshot."""
        if _COMMITTED_RECORD.exists():
            try:
                return cls.from_json(_COMMITTED_RECORD)
            except (OSError, ValueError):
                pass
        return cls.from_mapping(DEFAULT_MODEL, source="embedded-defaults")

    # ------------------------------------------------------------------ #
    # Predictions
    # ------------------------------------------------------------------ #

    def predict_engine_seconds(self, engine: str, entries: int) -> float:
        """End-to-end seconds to run an instance with ``entries`` CSR entries.

        ``entries`` counts directed adjacency entries plus nodes — the unit
        of per-round work for both execution paths.
        """
        if engine == "batched":
            return self.engine["batched_us_per_entry"] * entries * 1e-6
        if engine in ("vectorized", "compiled"):
            overhead = self.engine.get(f"{engine}_overhead_us")
            slope = self.engine.get(f"{engine}_us_per_entry")
            if overhead is None or slope is None:
                raise InvalidParameterError(
                    f"cost model has no coefficients for engine {engine!r}"
                )
            return (overhead + slope * entries) * 1e-6
        raise InvalidParameterError(f"cost model has no engine {engine!r}")

    def has_engine(self, engine: str) -> bool:
        """Whether this model carries coefficients for ``engine``."""
        if engine == "batched":
            return "batched_us_per_entry" in self.engine
        return (
            f"{engine}_us_per_entry" in self.engine
            and f"{engine}_overhead_us" in self.engine
        )

    def choose_engine(
        self, entries: int, compiled_available: Optional[bool] = None
    ) -> str:
        """The cheapest engine for ``entries`` CSR entries.

        ``compiled_available`` gates the ``"compiled"`` candidate on whether
        a kernel backend actually resolved on this machine; ``None`` (the
        default) asks :mod:`repro.local_model.kernels` directly, so a
        numba-less, compiler-less install never gets steered onto an engine
        that would silently run the numpy fallback with the same cost as
        ``"vectorized"`` plus dispatch overhead.
        """
        candidates = ["batched", "vectorized"]
        if self.has_engine("compiled"):
            if compiled_available is None:
                from repro.local_model import kernels

                compiled_available = kernels.get_backend() is not None
            if compiled_available:
                candidates.append("compiled")
        # Stable under ties: earlier candidates (simpler engines) win.
        return min(
            candidates, key=lambda name: self.predict_engine_seconds(name, entries)
        )

    def predict_route_seconds(self, route: str, line_entries: int) -> float:
        key = f"{route}_us_per_line_entry"
        if key not in self.route:
            raise InvalidParameterError(f"cost model has no route {route!r}")
        return self.route[key] * line_entries * 1e-6

    def choose_route(self, line_entries: int) -> str:
        direct = self.predict_route_seconds("direct", line_entries)
        simulation = self.predict_route_seconds("simulation", line_entries)
        # Ties go to the direct route: same wall cost, smaller messages.
        return "simulation" if simulation < direct else "direct"

    def predict_rounds(
        self, quality: str, delta: int, n: int, epsilon: float = 0.75
    ) -> float:
        fit = self.rounds.get(quality)
        if fit is None:
            raise InvalidParameterError(f"cost model has no quality {quality!r}")
        shape = quality_round_shape(quality, delta, n, epsilon=epsilon)
        return fit["coeff"] * shape + fit.get("const", 0.0)

    def choose_quality(
        self,
        delta: int,
        n: int,
        budget: Optional[float],
        epsilon: float = 0.75,
    ) -> str:
        """The best-palette preset whose predicted rounds fit ``budget``.

        With no budget the answer is always ``"linear"`` (the paper's
        ``O(Delta)``-colors guarantee).  An infeasible budget degrades to
        ``"superlinear"`` — the fastest preset — rather than failing.
        """
        if budget is None:
            return "linear"
        for quality in QUALITY_ORDER:
            if self.predict_rounds(quality, delta, n, epsilon=epsilon) <= budget:
                return quality
        return "superlinear"
