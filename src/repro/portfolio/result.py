"""The portfolio's normalized result and decision records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.edge_coloring import EdgeColoringResult
from repro.core.legal_coloring import LegalColoringResult
from repro.local_model.metrics import RunMetrics


@dataclass(frozen=True)
class PortfolioDecision:
    """Everything the portfolio chose for one run, and why.

    ``reasons`` maps each decided knob (``"algorithm"``, ``"engine"``,
    ``"quality"``, ``"route"``) to a one-line explanation; ``predicted``
    holds the cost-model numbers (seconds / rounds) the choice was based
    on; ``overrides`` lists the knobs the caller pinned explicitly, which
    the portfolio passed through untouched.  ``kernel_backend`` /
    ``kernel_threads`` record what the compiled engine would run on (the
    resolved provider name and its thread count) — populated whether or not
    the compiled engine was chosen, so a decision record always says *why*
    ``"compiled"`` was or was not on the table.

    ``engine`` is always the engine that *actually produced* the result:
    when the resilience layer degraded the run (see
    :func:`repro.resilience.run_with_degradation`), the engines abandoned on
    the way are listed fastest-first in ``degraded_from`` (empty for a
    healthy run) and the degradation is narrated in ``reasons["engine"]``.
    """

    algorithm: str
    engine: str
    quality: Optional[str]
    route: Optional[str]
    reasons: Mapping[str, str] = field(default_factory=dict)
    predicted: Mapping[str, float] = field(default_factory=dict)
    overrides: Tuple[str, ...] = ()
    model_source: str = "defaults"
    kernel_backend: Optional[str] = None
    kernel_threads: int = 1
    degraded_from: Tuple[str, ...] = ()

    def is_default(self) -> bool:
        """Whether the chosen (engine, quality, route) is the default triple.

        The defaults are the ones a plain ``core`` call would use: the
        process-default ``"batched"`` engine, the ``"linear"`` preset (or no
        preset, for the preset-free baselines), and the ``"direct"`` route
        (or no route, for vertex colorings).
        """
        return (
            self.engine == "batched"
            and self.quality in (None, "linear")
            and self.route in (None, "direct")
        )


@dataclass(frozen=True)
class PortfolioResult:
    """One result shape for every algorithm the portfolio can dispatch to.

    ``colors`` maps the colored items — vertices for :func:`color_graph`,
    canonical edges for :func:`color_edges` — to their colors;
    ``color_column`` is the same coloring as an ``int64`` array in the dense
    item order.  ``decision`` records what the portfolio picked.  The
    underlying :class:`LegalColoringResult` / :class:`EdgeColoringResult`
    stays available as ``raw``, and unknown attribute lookups fall through
    to it, so the portfolio result is a drop-in for either.
    """

    colors: Dict[Hashable, int]
    palette: int
    metrics: RunMetrics
    decision: PortfolioDecision
    color_column: Optional[np.ndarray] = field(repr=False, compare=False, default=None)
    raw: Union[LegalColoringResult, EdgeColoringResult, None] = field(
        repr=False, compare=False, default=None
    )

    @property
    def colors_used(self) -> int:
        return len(set(self.colors.values()))

    @property
    def edge_colors(self) -> Dict[Hashable, int]:
        """Alias of ``colors`` for edge-coloring consumers."""
        return self.colors

    @property
    def kernel_backend(self) -> Optional[str]:
        """The resolved kernel provider (``decision.kernel_backend``)."""
        return self.decision.kernel_backend

    @property
    def kernel_threads(self) -> int:
        """The kernel thread count (``decision.kernel_threads``)."""
        return self.decision.kernel_threads

    def __getattr__(self, name: str):
        raw = object.__getattribute__(self, "raw")
        if raw is not None and not name.startswith("__"):
            return getattr(raw, name)
        raise AttributeError(name)
