"""Auto-tuning portfolio: one entry point that picks the right configuration.

:func:`color_graph` / :func:`color_edges` select algorithm, execution
engine, Theorem 4.8 quality preset, and edge-coloring route per instance
from the measured :class:`CostModel` (calibrated offline by
``benchmarks/bench_portfolio.py``, committed as
``benchmarks/results/portfolio_model.json``), run the chosen
configuration, and return one normalized :class:`PortfolioResult` carrying
the :class:`PortfolioDecision` taken.  Every decision has a kwarg escape
hatch — see :mod:`repro.portfolio.facade`.
"""

from repro.portfolio.cost_model import DEFAULT_MODEL, QUALITY_ORDER, CostModel
from repro.portfolio.facade import (
    EDGE_ALGORITHMS,
    VERTEX_ALGORITHMS,
    color_edges,
    color_graph,
)
from repro.portfolio.result import PortfolioDecision, PortfolioResult

__all__ = [
    "CostModel",
    "DEFAULT_MODEL",
    "EDGE_ALGORITHMS",
    "PortfolioDecision",
    "PortfolioResult",
    "QUALITY_ORDER",
    "VERTEX_ALGORITHMS",
    "color_edges",
    "color_graph",
]
