"""CSR line-graph construction and the dense incidence encoding.

The paper's entire edge-coloring route (Section 5) runs vertex-coloring
algorithms on the line graph ``L(G)``.  The legacy constructor
(:func:`repro.graphs.line_graph.build_line_graph_network`) builds ``L(G)`` as
a :class:`~repro.local_model.network.Network` with pure-Python dict-of-set
bookkeeping -- ``O(sum_v deg(v)^2)`` Python-level work plus a full
:class:`Network` re-sort -- which dominated the wall clock of ``color_edges``
long before a single round was simulated.

:func:`build_line_graph_fast` derives ``L(G)`` directly from the CSR arrays
of ``G``'s :class:`~repro.local_model.fast_network.FastNetwork` view:

* the canonical edges of ``G`` (ordered by endpoint unique id, Lemma 5.2's
  pair-identifier scheme) are exactly the CSR entries with
  ``row < column`` -- dense node order *is* unique-id order -- and their CSR
  enumeration order is the lexicographic pair-key order, so the line-graph
  unique ids ``1..|E|`` fall out of one boolean mask;
* the adjacency of ``L(G)`` (edges sharing an endpoint) is the per-vertex
  clique over ``G``'s incidence lists, expanded with ``repeat``/modular
  arithmetic and finished with a single lexsort -- no Python per-edge work;
* the edge-tuple node identifiers are *not* materialized: the returned
  :class:`FastNetwork` carries a provider that interns them on first use at
  the API boundary (result extraction, reference-engine audits), exactly
  like the interned path-id column of the state table.

The builder also attaches a :class:`LineGraphMeta` -- int64 ``edge_u`` /
``edge_v`` endpoint columns and a ``sort_rank`` column encoding the
deterministic incident-edge order of Corollary 5.4 (the columns the
vectorized
:class:`~repro.primitives.kuhn_defective_edge.KuhnDefectiveEdgeColoringPhase`
kernel ranks against), plus a per-vertex CSR of incident edge indices for
line-graph-aware consumers.  CSR-masked sub-views (the per-level subgraphs
of Procedure Legal-Color) inherit the encoding, so the whole edge-mode
recursion stays on the array path.

``FastNetwork.to_network()`` on the returned view materializes the *exact*
legacy ``Network`` (same node identifiers, same unique ids, same adjacency
and orderings), which keeps the reference engine and every existing caller
auditable against the Python constructor (property-tested in
``tests/test_graphs_line_graph.py``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.fast_network import FastNetwork, _int64_array, fast_view

#: Raised whenever a line-graph operation meets non-edge-tuple identifiers
#: (kept identical to the scalar phase's ``initialize`` message).
NOT_A_LINE_GRAPH = (
    "Kuhn's defective edge coloring must run on a line-graph network "
    "whose node identifiers are edge 2-tuples"
)


class LineGraphMeta:
    """Dense incidence encoding of a line-graph :class:`FastNetwork`.

    Attributes
    ----------
    edge_u, edge_v:
        ``int64`` endpoint codes of each line-graph node (= edge of ``G``),
        in the canonical order (``edge_u`` is the endpoint with the smaller
        unique id).  Codes are dense node indices of ``G`` when built by
        :func:`build_line_graph_fast`, or interned endpoint codes when
        derived from an existing line-graph network; either way, code
        equality is identifier equality, which is all the kernels compare.
    sort_rank:
        ``int64`` key per line-graph node, strictly increasing in the
        :func:`~repro.local_model.network.node_sort_key` order of the edge
        tuples -- the deterministic order in which Corollary 5.4's
        "sort the incident edges and chunk" rule ranks them.
    vert_indptr, vert_edges:
        Per-endpoint CSR of incident edge indices: the edges incident to
        endpoint code ``w`` are ``vert_edges[vert_indptr[w]:vert_indptr[w+1]]``,
        ascending.  Not consumed by the Corollary 5.4 kernel (which ranks
        through ``edge_u``/``edge_v``/``sort_rank`` over the line-graph CSR);
        exposed for line-graph-aware consumers and pinned by the builder
        tests.
    source:
        The ``FastNetwork`` view of ``G`` the encoding was derived from
        (``None`` when reconstructed from an existing line-graph network).
    """

    __slots__ = ("edge_u", "edge_v", "sort_rank", "vert_indptr", "vert_edges", "source")

    def __init__(
        self,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        sort_rank: np.ndarray,
        vert_indptr: np.ndarray,
        vert_edges: np.ndarray,
        source: Optional[FastNetwork] = None,
    ) -> None:
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.sort_rank = sort_rank
        self.vert_indptr = vert_indptr
        self.vert_edges = vert_edges
        self.source = source

    @property
    def num_edges(self) -> int:
        """Number of line-graph nodes (= edges of the source graph)."""
        return len(self.edge_u)


def _node_sort_ranks(identifiers: Tuple) -> np.ndarray:
    """``rank[i]`` = position of ``identifiers[i]`` in node_sort_key order."""
    from repro.local_model.network import node_sort_key

    n = len(identifiers)
    ranks = np.empty(n, dtype=np.int64)
    by_key = sorted(range(n), key=lambda i: node_sort_key(identifiers[i]))
    ranks[np.asarray(by_key, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return ranks


def build_line_graph_fast(network) -> FastNetwork:
    """Derive ``L(G)`` as a :class:`FastNetwork` straight from ``G``'s CSR.

    ``network`` may be a :class:`~repro.local_model.network.Network` or a
    (possibly CSR-masked) :class:`FastNetwork`.  The result carries a
    :class:`LineGraphMeta` (``line_meta`` attribute) and defers its
    edge-tuple node identifiers behind a lazy provider; its unique ids are
    ``1..|E|`` in lexicographic pair-key order, matching the legacy
    constructor bit for bit (``to_network()`` materializes the identical
    :class:`Network`).
    """
    g = fast_view(network)
    n = g.num_nodes
    rows, cols = g.rows_np, g.indices_np

    # Canonical edges: dense order is unique-id order, so the CSR entries
    # with row < col enumerate the pairs (Id(u), Id(v)), u < v, already in
    # lexicographic pair-key order.  Line-graph unique ids are 1..m along it.
    forward = rows < cols
    edge_u = rows[forward]
    edge_v = cols[forward]
    m = len(edge_u)

    # Edge index of every directed CSR entry of G (the per-vertex incidence
    # CSR): forward entries count off 0..m-1; each backward entry finds its
    # canonical twin by pair-key binary search.
    eid = np.empty(len(rows), dtype=np.int64)
    eid[forward] = np.arange(m, dtype=np.int64)
    backward = ~forward
    if m:
        keys = edge_u * n + edge_v  # sorted ascending by construction
        eid[backward] = np.searchsorted(keys, cols[backward] * n + rows[backward])

    # Clique expansion: edges e != f are adjacent in L(G) iff they share an
    # endpoint, and a simple graph's edges share at most one, so emitting
    # every ordered pair within every vertex's incidence list enumerates each
    # directed line-graph edge exactly once.
    degrees = g.degrees_np
    pair_counts = degrees * degrees
    total = int(pair_counts.sum())
    src = np.repeat(eid, np.repeat(degrees, degrees))
    block_offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(pair_counts[:-1], out=block_offsets[1:])
    position = np.arange(total, dtype=np.int64) - np.repeat(block_offsets, pair_counts)
    width = np.repeat(degrees, pair_counts)
    starts = np.repeat(g.indptr_np[:-1], pair_counts)
    dst = eid[starts + position % width]  # width >= 1 on every emitted entry
    del position, width, starts
    keep = src != dst
    src, dst = src[keep], dst[keep]
    del keep
    by_src_then_dst = np.lexsort((dst, src))
    line_indices = dst[by_src_then_dst]
    line_degrees = np.bincount(src, minlength=m)
    del src, dst, by_src_then_dst
    line_indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(line_degrees, out=line_indptr[1:])

    # The Corollary 5.4 ranking key: node_sort_key order over the edge
    # tuples is lexicographic over the endpoints' node_sort_key ranks.
    node_ranks = _node_sort_ranks(g.order)
    sort_rank = node_ranks[edge_u] * (n + 1) + node_ranks[edge_v]

    line = FastNetwork(None)
    line.network = None
    line._order = None
    line._index_of = None
    line.num_nodes = m
    line.unique_ids = _int64_array(np.arange(1, m + 1, dtype=np.int64))
    line.indices = _int64_array(line_indices)
    line.indptr = _int64_array(line_indptr)
    line.degrees = _int64_array(line_degrees)
    line.max_degree = int(line_degrees.max()) if m else 0
    line._neighbor_ids = None
    line._neighbor_id_sets = None
    line.line_meta = LineGraphMeta(
        edge_u=edge_u,
        edge_v=edge_v,
        sort_rank=sort_rank,
        vert_indptr=g.indptr_np,
        vert_edges=eid,
        source=g,
    )

    def edge_tuples() -> Iterator[Tuple]:
        g_order = g.order
        return (
            (g_order[u], g_order[v])
            for u, v in zip(edge_u.tolist(), edge_v.tolist())
        )

    line._order_provider = edge_tuples
    return line


def _derive_line_meta(fast: FastNetwork) -> LineGraphMeta:
    """Reconstruct the incidence encoding from edge-tuple node identifiers.

    This is the compatibility path for line graphs built the legacy way
    (:func:`repro.graphs.line_graph.build_line_graph_network` or by hand):
    endpoints are interned into dense codes and the ranking key is computed
    by one Python sort.  The result is cached on the view, so repeated
    kernel executions on the same network pay it once.
    """
    order = fast.order
    m = fast.num_nodes
    edge_u = np.empty(m, dtype=np.int64)
    edge_v = np.empty(m, dtype=np.int64)
    codes: dict = {}
    for k, node in enumerate(order):
        if not (isinstance(node, tuple) and len(node) == 2):
            raise InvalidParameterError(NOT_A_LINE_GRAPH)
        a, b = node
        edge_u[k] = codes.setdefault(a, len(codes))
        edge_v[k] = codes.setdefault(b, len(codes))

    sort_rank = _node_sort_ranks(order)

    empty = np.zeros(0, dtype=np.int64)
    endpoints = np.concatenate([edge_u, edge_v]) if m else empty
    incident = np.concatenate([np.arange(m, dtype=np.int64)] * 2) if m else empty
    by_endpoint = np.lexsort((incident, endpoints))
    vert_edges = incident[by_endpoint]
    vert_counts = np.bincount(endpoints, minlength=len(codes))
    vert_indptr = np.zeros(len(codes) + 1, dtype=np.int64)
    np.cumsum(vert_counts, out=vert_indptr[1:])
    return LineGraphMeta(
        edge_u=edge_u,
        edge_v=edge_v,
        sort_rank=sort_rank,
        vert_indptr=vert_indptr,
        vert_edges=vert_edges,
        source=None,
    )


def line_meta_for(fast: FastNetwork) -> LineGraphMeta:
    """The :class:`LineGraphMeta` of ``fast`` (derived and cached on demand).

    Views produced by :func:`build_line_graph_fast` (and CSR-masked views
    derived from them) already carry the encoding; any other view must have
    edge-2-tuple node identifiers, or
    :class:`~repro.exceptions.InvalidParameterError` is raised -- the same
    failure the scalar phase reports on a non-line-graph network.
    """
    if fast.line_meta is None:
        fast.line_meta = _derive_line_meta(fast)
    return fast.line_meta
