"""Per-phase adapters: route a phase's hot loops through the kernel backend.

Each runner replicates the corresponding ``vector_run`` *exactly* -- same
validation, same degenerate cases, same metric charging, same state writes
-- swapping only the per-round array chains for one fused kernel call, so
the compiled engine stays bit-identical to the vectorized engine (which the
four-engine equivalence suite and the goldens enforce).

Runners are registered by *qualified class name*, not by class object: the
phase modules import the scheduler stack, so importing them here would be
circular.  Dispatch walks the phase's MRO, which keeps user subclasses of a
registered phase on the compiled path as long as they do not override
``vector_run`` semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.local_model.vectorized import VectorContext, check_color_range

#: Exact scalar-engine error texts (see the corresponding phase modules).
_PALETTE_TEMPLATE = "color {color} outside declared palette 1..{palette}"
_LINIAL_TEMPLATE = "initial color {color} outside palette 1..{palette}"
_ITER_ERROR = (
    "no free color during iterative reduction; the target palette "
    "is smaller than the subgraph degree + 1"
)
_KW_ERROR = (
    "no free color during Kuhn-Wattenhofer reduction; the target "
    "palette is smaller than the subgraph degree + 1"
)


def run_linial(phase, ctx: VectorContext, backend) -> None:
    """Compiled :class:`~repro.primitives.linial.LinialColoringPhase`."""
    if phase.input_key is None:
        colors = ctx.unique_ids().copy()
    else:
        colors = ctx.column(phase.input_key)
    check_color_range(colors, phase.initial_palette, _LINIAL_TEMPLATE)

    if phase.degree_bound == 0:
        ctx.charge_silent_round()
        ctx.write_column("_linial_current", colors)
        ctx.write_value(phase.output_key, 1)
        return
    if not phase.schedule:
        ctx.charge_silent_round()
        ctx.write_column("_linial_current", colors)
        ctx.write_column(phase.output_key, colors)
        return

    fast = ctx.fast
    uids = fast.unique_ids_np
    for q, digits, _palette_before in phase.schedule:
        out = np.empty(fast.num_nodes, dtype=np.int64)
        backend.linial_round(
            fast.indptr_np, fast.indices_np, uids, colors, q, digits, out
        )
        colors = out
    ctx.charge_uniform_broadcast(len(phase.schedule))
    ctx.write_column("_linial_current", colors)
    ctx.write_column(phase.output_key, colors)


def run_defective_step(phase, ctx: VectorContext, backend) -> None:
    """Compiled :class:`~repro.primitives.kuhn_defective.DefectiveStepPhase`."""
    colors = ctx.column(phase.input_key)
    check_color_range(colors, phase.palette, _PALETTE_TEMPLATE)
    fast = ctx.fast
    out = np.empty(fast.num_nodes, dtype=np.int64)
    backend.defective_step(
        fast.indptr_np, fast.indices_np, colors, phase.q, phase.digits, out
    )
    ctx.charge_uniform_broadcast(1)
    ctx.write_column(phase.output_key, out)


def run_iterative_reduction(phase, ctx: VectorContext, backend) -> None:
    """Compiled :class:`~repro.primitives.color_reduction.IterativeColorReductionPhase`."""
    colors = ctx.column(phase.input_key)
    check_color_range(colors, phase.palette, _PALETTE_TEMPLATE)
    if phase.total_rounds == 0:
        ctx.charge_silent_round()
        ctx.write_column("_reduce_current", colors)
        ctx.write_column(phase.output_key, colors)
        return
    fast = ctx.fast
    status = np.zeros(1, dtype=np.int64)
    backend.iter_reduce(
        fast.indptr_np,
        fast.indices_np,
        colors,
        phase.palette,
        phase.target,
        phase.total_rounds,
        status,
    )
    if status[0] != 0:
        raise SimulationError(_ITER_ERROR)
    ctx.charge_uniform_broadcast(phase.total_rounds)
    ctx.write_column("_reduce_current", colors)
    ctx.write_column(phase.output_key, colors)


def run_kw_reduction(phase, ctx: VectorContext, backend) -> None:
    """Compiled :class:`~repro.primitives.color_reduction.KuhnWattenhoferReductionPhase`."""
    colors = ctx.column(phase.input_key)
    check_color_range(colors, phase.palette, _PALETTE_TEMPLATE)
    if phase.total_rounds == 0:
        ctx.charge_silent_round()
        ctx.write_column("_kw_current", colors)
        ctx.write_column(phase.output_key, colors)
        return
    fast = ctx.fast
    status = np.zeros(1, dtype=np.int64)
    backend.kw_reduce(
        fast.indptr_np,
        fast.indices_np,
        colors,
        phase.target,
        phase.total_rounds,
        status,
    )
    if status[0] == 2:  # kernel scratch allocation failed; colors untouched
        phase.vector_run(ctx)
        return
    if status[0] != 0:
        raise SimulationError(_KW_ERROR)
    ctx.charge_uniform_broadcast(phase.total_rounds)
    ctx.write_column("_kw_current", colors)
    ctx.write_column(phase.output_key, colors)


def run_defective_edge(phase, ctx: VectorContext, backend) -> None:
    """Compiled :class:`~repro.primitives.kuhn_defective_edge.KuhnDefectiveEdgeColoringPhase`."""
    from repro.primitives.kuhn_defective_edge import line_meta_for

    fast = ctx.fast
    meta = line_meta_for(fast)
    n = fast.num_nodes
    codes, sizes = phase._class_column(ctx)
    has_codes = 0 if codes is None else 1
    if codes is None:
        codes = np.zeros(n, dtype=np.int64)
    else:
        codes = np.ascontiguousarray(codes, dtype=np.int64)

    rank_u = np.empty(n, dtype=np.int64)
    rank_v = np.empty(n, dtype=np.int64)
    backend.edge_rank(
        fast.indptr_np,
        fast.indices_np,
        np.ascontiguousarray(meta.edge_u, dtype=np.int64),
        np.ascontiguousarray(meta.edge_v, dtype=np.int64),
        np.ascontiguousarray(meta.sort_rank, dtype=np.int64),
        codes,
        has_codes,
        rank_u,
        rank_v,
    )
    label_u = np.minimum(rank_u // phase._chunk + 1, phase.p_prime)
    label_v = np.minimum(rank_v // phase._chunk + 1, phase.p_prime)

    if sizes is None:
        ctx.charge_uniform_broadcast(1, payload_words=2)
    else:
        nnz = len(fast.indices)
        degrees = fast.degrees_np
        ctx.charge(
            rounds=1,
            messages=nnz,
            total_words=int((degrees * sizes).sum()),
            max_message_words=int(sizes[degrees > 0].max()) if nnz else 0,
        )
    ctx.write_column(phase.output_key, (label_u - 1) * phase.p_prime + label_v)


def run_luby(phase, ctx: VectorContext, backend) -> None:
    """Compiled :class:`~repro.baselines.luby_random.LubyRandomColoringPhase`.

    The draws stay on :class:`StringSeededDraws` (hashlib cannot be
    compiled and the draw stream defines bit-identity); the four per-round
    array sweeps -- free counting, candidate selection, final absorption,
    conflict resolution -- run fused over the CSR.
    """
    from repro.local_model.rng_kernel import StringSeededDraws

    fast = ctx.fast
    n = fast.num_nodes
    palette = phase.palette
    degrees = fast.degrees_np
    indptr, indices = fast.indptr_np, fast.indices_np
    draws = StringSeededDraws(phase.seed, ctx.unique_ids())

    taken = np.zeros((n, palette), dtype=np.uint8)
    final = np.zeros(n, dtype=np.int64)
    candidate = np.zeros(n, dtype=np.int64)
    undecided = np.arange(n, dtype=np.int64)
    undecided_mask = np.ones(n, dtype=np.uint8)
    announce = np.zeros(0, dtype=np.int64)

    messages = 0
    round_index = 0
    while len(undecided) or len(announce):
        round_index += 1
        ctx.check_round_budget(round_index)
        messages += int(degrees[undecided].sum()) + int(degrees[announce].sum())

        # --- broadcast: undecided nodes draw from their free colors --- #
        free_counts = np.empty(len(undecided), dtype=np.int64)
        backend.luby_free_counts(undecided, taken, palette, free_counts)
        candidate[undecided] = 0
        drawing = free_counts > 0
        lanes = np.ascontiguousarray(undecided[drawing])
        if len(lanes):
            picks = draws.draw(lanes, free_counts[drawing], round_index)
            picks = np.ascontiguousarray(picks, dtype=np.int64)
            backend.luby_candidates(lanes, picks, taken, palette, candidate)

        # --- receive: neighbor finals first (undecided rows only) --- #
        if len(announce):
            backend.luby_absorb(announce, indptr, indices, final, undecided_mask, taken)

        # --- conflicts + keep, against the just-updated taken rows --- #
        keep_flags = np.empty(len(undecided), dtype=np.uint8)
        backend.luby_resolve(undecided, indptr, indices, candidate, taken, keep_flags)
        keep = keep_flags.view(bool)
        deciders = np.ascontiguousarray(undecided[keep])
        final[deciders] = candidate[deciders]
        candidate[deciders] = 0
        undecided_mask[deciders] = 0
        announce = deciders
        undecided = np.ascontiguousarray(undecided[~keep])

    ctx.charge(round_index, messages, 2 * messages, 2 if messages else 0)
    ctx.write_column(phase.output_key, final)
    ctx.write_column("_luby_final", final)


#: Qualified phase class name -> compiled runner.
_ADAPTERS: Dict[str, Callable] = {
    "repro.primitives.linial.LinialColoringPhase": run_linial,
    "repro.primitives.kuhn_defective.DefectiveStepPhase": run_defective_step,
    "repro.primitives.color_reduction.IterativeColorReductionPhase": run_iterative_reduction,
    "repro.primitives.color_reduction.KuhnWattenhoferReductionPhase": run_kw_reduction,
    "repro.primitives.kuhn_defective_edge.KuhnDefectiveEdgeColoringPhase": run_defective_edge,
    "repro.baselines.luby_random.LubyRandomColoringPhase": run_luby,
}


def runner_for(phase) -> Optional[Callable]:
    """The registered compiled runner for ``phase`` (walks the MRO), or None."""
    for klass in type(phase).__mro__:
        runner = _ADAPTERS.get(f"{klass.__module__}.{klass.__qualname__}")
        if runner is not None:
            return runner
    return None
