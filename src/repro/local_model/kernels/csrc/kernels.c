/* Fused CSR kernels for the "compiled" engine.
 *
 * Line-by-line transcription of the reference loops in `_loops.py`
 * (which is the semantic source of truth -- see its docstring for the
 * conventions and the per-kernel race arguments).  Built on demand by
 * `_c_backend.py` with `gcc -O3 -fopenmp -shared -fPIC` and loaded via
 * ctypes; every entry point uses only int64/uint8 pointers and int64
 * scalars so the ABI stays trivial.
 *
 * Python `%` on possibly-negative operands differs from C's: the only
 * operand here that may be negative is a unique id (non-monotone ids are
 * allowed, negative ones are not guaranteed absent), so `PYMOD` folds the
 * remainder back to Python semantics.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _OPENMP
#include <omp.h>
#endif

typedef int64_t i64;
typedef uint8_t u8;

#define PYMOD(a, m) ((((a) % (m)) + (m)) % (m))

void repro_set_threads(i64 n)
{
#ifdef _OPENMP
    if (n > 0)
        omp_set_num_threads((int)n);
#else
    (void)n;
#endif
}

i64 repro_max_threads(void)
{
#ifdef _OPENMP
    return (i64)omp_get_max_threads();
#else
    return 1;
#endif
}

/* Base-q digit rows of `colors - 1`, most significant digit last.  Shared
 * by the polynomial kernels: extracting digits once per node per round
 * (instead of once per neighbor-point visit) removes the divisions from
 * the innermost Horner loops. */
static i64 *digit_table(const i64 *colors, i64 n, i64 q, i64 num_digits)
{
    i64 *table = (i64 *)malloc((size_t)(n * num_digits) * sizeof(i64));
    if (table == NULL)
        return NULL;
#pragma omp parallel for schedule(static)
    for (i64 v = 0; v < n; v++) {
        i64 remaining = colors[v] - 1;
        i64 *row = table + v * num_digits;
        for (i64 j = 0; j < num_digits; j++) {
            row[j] = remaining % q;
            remaining /= q;
        }
    }
    return table;
}

/* Horner evaluation of one cached digit row at `point`. */
static inline i64 row_eval(const i64 *row, i64 point, i64 q, i64 num_digits)
{
    i64 result = 0;
    for (i64 j = num_digits - 1; j >= 0; j--)
        result = (result * point + row[j]) % q;
    return result;
}

/* Uncached evaluation for the digit_table out-of-memory path (base >= 2
 * bounds num_digits by the 63 value bits of i64, so the row fits on the
 * stack). */
static i64 slow_eval(i64 value, i64 point, i64 q, i64 num_digits)
{
    i64 row[64];
    for (i64 j = 0; j < num_digits; j++) {
        row[j] = value % q;
        value /= q;
    }
    return row_eval(row, point, q, num_digits);
}

void linial_round(const i64 *indptr, const i64 *indices, const i64 *uids,
                  const i64 *colors, i64 n, i64 q, i64 num_digits, i64 *out)
{
    i64 *table = digit_table(colors, n, q, num_digits);
    if (table == NULL) {
        for (i64 v = 0; v < n; v++) {
            i64 own = colors[v] - 1;
            i64 chosen_point = -1, chosen_value = 0;
            for (i64 point = 0; point < q && chosen_point < 0; point++) {
                i64 own_value = slow_eval(own, point, q, num_digits);
                int ok = 1;
                for (i64 e = indptr[v]; e < indptr[v + 1]; e++) {
                    i64 other = colors[indices[e]] - 1;
                    if (other == own)
                        continue;
                    if (slow_eval(other, point, q, num_digits) == own_value) {
                        ok = 0;
                        break;
                    }
                }
                if (ok) {
                    chosen_point = point;
                    chosen_value = own_value;
                }
            }
            if (chosen_point < 0) {
                chosen_point = PYMOD(uids[v], q);
                chosen_value = slow_eval(own, chosen_point, q, num_digits);
            }
            out[v] = chosen_point * q + chosen_value + 1;
        }
        return;
    }
#pragma omp parallel for schedule(dynamic, 1024)
    for (i64 v = 0; v < n; v++) {
        i64 own = colors[v] - 1;
        i64 start = indptr[v], end = indptr[v + 1];
        const i64 *own_row = table + v * num_digits;
        i64 chosen_point = -1, chosen_value = 0;
        for (i64 point = 0; point < q; point++) {
            i64 own_value = row_eval(own_row, point, q, num_digits);
            int ok = 1;
            for (i64 e = start; e < end; e++) {
                i64 u = indices[e];
                if (colors[u] - 1 == own)
                    continue;
                if (row_eval(table + u * num_digits, point, q, num_digits)
                    == own_value) {
                    ok = 0;
                    break;
                }
            }
            if (ok) {
                chosen_point = point;
                chosen_value = own_value;
                break;
            }
        }
        if (chosen_point < 0) {
            chosen_point = PYMOD(uids[v], q);
            chosen_value = row_eval(own_row, chosen_point, q, num_digits);
        }
        out[v] = chosen_point * q + chosen_value + 1;
    }
    free(table);
}

void defective_step(const i64 *indptr, const i64 *indices, const i64 *colors,
                    i64 n, i64 q, i64 num_digits, i64 *out)
{
    i64 *table = digit_table(colors, n, q, num_digits);
    if (table == NULL) {
        for (i64 v = 0; v < n; v++) {
            i64 own = colors[v] - 1;
            i64 best_point = 0, best_value = 0, best_count = -1;
            for (i64 point = 0; point < q; point++) {
                i64 own_value = slow_eval(own, point, q, num_digits);
                i64 count = 0;
                for (i64 e = indptr[v]; e < indptr[v + 1]; e++) {
                    i64 other = colors[indices[e]] - 1;
                    if (other == own)
                        continue;
                    if (slow_eval(other, point, q, num_digits) == own_value)
                        count++;
                }
                if (best_count < 0 || count < best_count) {
                    best_point = point;
                    best_value = own_value;
                    best_count = count;
                    if (count == 0)
                        break;
                }
            }
            out[v] = best_point * q + best_value + 1;
        }
        return;
    }
#pragma omp parallel for schedule(dynamic, 1024)
    for (i64 v = 0; v < n; v++) {
        i64 own = colors[v] - 1;
        i64 start = indptr[v], end = indptr[v + 1];
        const i64 *own_row = table + v * num_digits;
        i64 best_point = 0, best_value = 0, best_count = -1;
        for (i64 point = 0; point < q; point++) {
            i64 own_value = row_eval(own_row, point, q, num_digits);
            i64 count = 0;
            for (i64 e = start; e < end; e++) {
                i64 u = indices[e];
                if (colors[u] - 1 == own)
                    continue;
                if (row_eval(table + u * num_digits, point, q, num_digits)
                    == own_value)
                    count++;
            }
            if (best_count < 0 || count < best_count) {
                best_point = point;
                best_value = own_value;
                best_count = count;
                if (count == 0)
                    break;
            }
        }
        out[v] = best_point * q + best_value + 1;
    }
    free(table);
}

void iter_reduce(const i64 *indptr, const i64 *indices, i64 *colors, i64 n,
                 i64 palette, i64 target, i64 total_rounds, i64 *status)
{
    for (i64 round_index = 1; round_index <= total_rounds; round_index++) {
        i64 active = palette - round_index + 1;
#pragma omp parallel
        {
            u8 *taken = (u8 *)malloc((size_t)target);
#pragma omp for schedule(dynamic, 2048)
            for (i64 v = 0; v < n; v++) {
                if (colors[v] != active)
                    continue;
                memset(taken, 0, (size_t)target);
                for (i64 e = indptr[v]; e < indptr[v + 1]; e++) {
                    i64 c = colors[indices[e]];
                    if (c >= 1 && c <= target)
                        taken[c - 1] = 1;
                }
                i64 replacement = -1;
                for (i64 c = 0; c < target; c++) {
                    if (!taken[c]) {
                        replacement = c;
                        break;
                    }
                }
                if (replacement < 0)
                    status[0] = 1;
                else
                    colors[v] = replacement + 1;
            }
            free(taken);
        }
        if (status[0] != 0)
            return;
    }
}

void kw_reduce(const i64 *indptr, const i64 *indices, i64 *colors, i64 n,
               i64 k, i64 total_rounds, i64 *status)
{
    i64 block_width = 2 * k;
    /* Blocks and offsets are materialized once and maintained across
     * rounds (divisions happen only here and at compactions, not every
     * round); a neighbor's maintained pair is read under the same benign
     * race argument as its color -- see `_loops.py`. */
    i64 *blocks = (i64 *)malloc((size_t)n * sizeof(i64));
    i64 *offsets = (i64 *)malloc((size_t)n * sizeof(i64));
    if (blocks == NULL || offsets == NULL) {
        free(blocks);
        free(offsets);
        status[0] = 2; /* out of memory: the wrapper falls back to numpy */
        return;
    }
#pragma omp parallel for schedule(static)
    for (i64 v = 0; v < n; v++) {
        blocks[v] = (colors[v] - 1) / block_width;
        offsets[v] = (colors[v] - 1) % block_width;
    }
    for (i64 round_index = 1; round_index <= total_rounds; round_index++) {
        i64 step = (round_index - 1) % k;
#pragma omp parallel
        {
            u8 *taken = (u8 *)malloc((size_t)k);
#pragma omp for schedule(dynamic, 2048)
            for (i64 v = 0; v < n; v++) {
                if (offsets[v] != k + step)
                    continue;
                i64 block = blocks[v];
                memset(taken, 0, (size_t)k);
                for (i64 e = indptr[v]; e < indptr[v + 1]; e++) {
                    i64 u = indices[e];
                    if (blocks[u] != block)
                        continue;
                    i64 neighbor_offset = offsets[u];
                    if (neighbor_offset < k)
                        taken[neighbor_offset] = 1;
                }
                i64 replacement = -1;
                for (i64 o = 0; o < k; o++) {
                    if (!taken[o]) {
                        replacement = o;
                        break;
                    }
                }
                if (replacement < 0) {
                    status[0] = 1;
                } else {
                    colors[v] = block * block_width + replacement + 1;
                    offsets[v] = replacement;
                }
            }
            free(taken);
        }
        if (status[0] != 0)
            break;
        if (step == k - 1) {
#pragma omp parallel for schedule(static)
            for (i64 v = 0; v < n; v++) {
                colors[v] = blocks[v] * k + offsets[v] + 1;
                blocks[v] = (colors[v] - 1) / block_width;
                offsets[v] = (colors[v] - 1) % block_width;
            }
        }
    }
    free(blocks);
    free(offsets);
}

void edge_rank(const i64 *indptr, const i64 *indices, const i64 *edge_u,
               const i64 *edge_v, const i64 *sort_rank, const i64 *codes,
               i64 has_codes, i64 n, i64 *rank_u, i64 *rank_v)
{
#pragma omp parallel for schedule(dynamic, 1024)
    for (i64 x = 0; x < n; x++) {
        i64 u = edge_u[x], v = edge_v[x];
        i64 own_rank = sort_rank[x];
        i64 count_u = 0, count_v = 0;
        for (i64 e = indptr[x]; e < indptr[x + 1]; e++) {
            i64 y = indices[e];
            if (has_codes && codes[y] != codes[x])
                continue;
            if (sort_rank[y] >= own_rank)
                continue;
            i64 nu = edge_u[y], nv = edge_v[y];
            if (nu == u || nv == u)
                count_u++;
            if (nu == v || nv == v)
                count_v++;
        }
        rank_u[x] = count_u;
        rank_v[x] = count_v;
    }
}

void luby_free_counts(const i64 *undecided, i64 m, const u8 *taken,
                      i64 palette, i64 *free_counts)
{
#pragma omp parallel for schedule(static)
    for (i64 i = 0; i < m; i++) {
        const u8 *row = taken + undecided[i] * palette;
        i64 count = 0;
        for (i64 c = 0; c < palette; c++)
            if (!row[c])
                count++;
        free_counts[i] = count;
    }
}

void luby_candidates(const i64 *lanes, i64 m, const i64 *picks,
                     const u8 *taken, i64 palette, i64 *candidate)
{
#pragma omp parallel for schedule(static)
    for (i64 i = 0; i < m; i++) {
        i64 v = lanes[i];
        const u8 *row = taken + v * palette;
        i64 pick = picks[i], seen = 0;
        for (i64 c = 0; c < palette; c++) {
            if (!row[c]) {
                if (seen == pick) {
                    candidate[v] = c + 1;
                    break;
                }
                seen++;
            }
        }
    }
}

void luby_absorb(const i64 *announce, i64 m, const i64 *indptr,
                 const i64 *indices, const i64 *final_color,
                 const u8 *undecided_mask, u8 *taken, i64 palette)
{
#pragma omp parallel for schedule(dynamic, 256)
    for (i64 i = 0; i < m; i++) {
        i64 a = announce[i];
        i64 c = final_color[a] - 1;
        for (i64 e = indptr[a]; e < indptr[a + 1]; e++) {
            i64 neighbor = indices[e];
            if (undecided_mask[neighbor])
                taken[neighbor * palette + c] = 1;
        }
    }
}

void luby_resolve(const i64 *undecided, i64 m, const i64 *indptr,
                  const i64 *indices, const i64 *candidate, const u8 *taken,
                  i64 palette, u8 *keep)
{
#pragma omp parallel for schedule(dynamic, 1024)
    for (i64 i = 0; i < m; i++) {
        i64 v = undecided[i];
        i64 c = candidate[v];
        if (c == 0) {
            keep[i] = 0;
            continue;
        }
        u8 ok = 1;
        if (taken[v * palette + c - 1]) {
            ok = 0;
        } else {
            for (i64 e = indptr[v]; e < indptr[v + 1]; e++) {
                if (candidate[indices[e]] == c) {
                    ok = 0;
                    break;
                }
            }
        }
        keep[i] = ok;
    }
}
