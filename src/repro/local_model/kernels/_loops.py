"""Reference loop bodies for the fused compiled kernels.

Each function here is the *semantic source of truth* for one fused kernel:
a plain-Python loop nest over CSR arrays, written in the restricted style
that ``numba.njit(parallel=True)`` compiles directly (no dicts, no object
arrays, no fancy indexing inside the node loops).  The numba backend jits
these exact functions; the C backend (``csrc/kernels.c``) is a line-by-line
transcription, and ``tests/test_kernels.py`` holds every backend to these
loops on adversarial CSRs.

They are **not** an execution backend themselves -- pure-Python loops over
``n`` nodes would be slower than the numpy ``vector_run`` kernels they fuse
-- but they run everywhere, so the correctness story never depends on which
accelerators the machine has.

Conventions shared by every kernel:

* CSR arrays (``indptr``, ``indices``) and all color/id columns are
  ``int64``; flag/matrix scratch (``taken``, ``undecided_mask``, ``keep``)
  is ``uint8``.
* Colors are 1-based; ``0`` encodes "none" where a sentinel is needed.
* Parallel node loops (``prange``) only ever write cells owned by their own
  iteration, except where a comment argues the race is benign (idempotent
  byte stores, or values provably irrelevant to every concurrent reader).
* Failure is reported through a status return (``0`` ok), never an
  exception: the adapters raise the scalar engines' exact errors.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # pragma: no cover - the CI numba leg covers the other arm
    prange = range

#: Names of the kernels a backend must provide (the adapters look these up
#: by name, so the numba and C backends stay drop-in interchangeable).
KERNEL_NAMES = (
    "linial_round",
    "defective_step",
    "iter_reduce",
    "kw_reduce",
    "edge_rank",
    "luby_free_counts",
    "luby_candidates",
    "luby_absorb",
    "luby_resolve",
)


def _digit_table(colors, q, num_digits):
    """Base-q digit rows of ``colors - 1``, most significant digit last.

    Shared by the polynomial kernels: extracting digits once per node per
    round (instead of once per neighbor-point visit) removes the divisions
    from the innermost Horner loops.
    """
    n = colors.shape[0]
    table = np.empty((n, num_digits), dtype=np.int64)
    for v in prange(n):
        remaining = colors[v] - 1
        for j in range(num_digits):
            table[v, j] = remaining % q
            remaining //= q
    return table


def linial_round(indptr, indices, uids, colors, q, num_digits, out):
    """One Linial recoloring round, fused per node.

    For every node: find the smallest evaluation point ``a`` in ``0..q-1``
    at which its color polynomial differs from those of *all* neighbors
    holding a different color, falling back to ``uid % q`` when no point is
    free (unreachable for legal inputs), and write the new color
    ``a * q + g(a) + 1`` to ``out``.  Reads ``colors``, writes ``out`` --
    no cross-node hazards.
    """
    n = indptr.shape[0] - 1
    table = _digit_table(colors, q, num_digits)
    for v in prange(n):
        own = colors[v] - 1
        start = indptr[v]
        end = indptr[v + 1]
        chosen_point = np.int64(-1)
        chosen_value = np.int64(0)
        for point in range(q):
            # Horner from the most significant cached base-q digit.
            own_value = np.int64(0)
            for j in range(num_digits - 1, -1, -1):
                own_value = (own_value * point + table[v, j]) % q
            ok = True
            for e in range(start, end):
                u = indices[e]
                if colors[u] - 1 == own:
                    continue
                other_value = np.int64(0)
                for j in range(num_digits - 1, -1, -1):
                    other_value = (other_value * point + table[u, j]) % q
                if other_value == own_value:
                    ok = False
                    break
            if ok:
                chosen_point = point
                chosen_value = own_value
                break
        if chosen_point < 0:
            point = uids[v] % q
            own_value = np.int64(0)
            for j in range(num_digits - 1, -1, -1):
                own_value = (own_value * point + table[v, j]) % q
            chosen_point = point
            chosen_value = own_value
        out[v] = chosen_point * q + chosen_value + 1


def defective_step(indptr, indices, colors, q, num_digits, out):
    """One Kuhn defective polynomial step, fused per node.

    For every node: over points ``0..q-1``, count collisions (differing
    neighbors whose polynomial agrees at that point), keep the first point
    minimizing the count under *strict* improvement, stop early at zero
    collisions, and write ``best_point * q + g(best_point) + 1``.
    """
    n = indptr.shape[0] - 1
    table = _digit_table(colors, q, num_digits)
    for v in prange(n):
        own = colors[v] - 1
        start = indptr[v]
        end = indptr[v + 1]
        best_point = np.int64(0)
        best_value = np.int64(0)
        best_count = np.int64(-1)
        for point in range(q):
            own_value = np.int64(0)
            for j in range(num_digits - 1, -1, -1):
                own_value = (own_value * point + table[v, j]) % q
            count = np.int64(0)
            for e in range(start, end):
                u = indices[e]
                if colors[u] - 1 == own:
                    continue
                other_value = np.int64(0)
                for j in range(num_digits - 1, -1, -1):
                    other_value = (other_value * point + table[u, j]) % q
                if other_value == own_value:
                    count += 1
            if best_count < 0 or count < best_count:
                best_point = point
                best_value = own_value
                best_count = count
                if count == 0:
                    break
        out[v] = best_point * q + best_value + 1


def iter_reduce(indptr, indices, colors, palette, target, total_rounds, status):
    """The full iterative color reduction, one eliminated class per round.

    Round ``r`` recolors the class ``palette - r + 1`` to each node's first
    free color in ``1..target``.  The recoloring class is independent (the
    input coloring is legal), so no recoloring node reads another recoloring
    node's color: the per-round node loop is race-free.  On a node with no
    free color, ``status[0]`` is set and the sweep stops after that round.
    """
    n = indptr.shape[0] - 1
    for round_index in range(1, total_rounds + 1):
        active = palette - round_index + 1
        for v in prange(n):
            if colors[v] != active:
                continue
            taken = np.zeros(target, dtype=np.uint8)
            for e in range(indptr[v], indptr[v + 1]):
                c = colors[indices[e]]
                if 1 <= c <= target:
                    taken[c - 1] = 1
            replacement = np.int64(-1)
            for c in range(target):
                if taken[c] == 0:
                    replacement = c
                    break
            if replacement < 0:
                status[0] = 1
            else:
                colors[v] = replacement + 1
        if status[0] != 0:
            return


def kw_reduce(indptr, indices, colors, k, total_rounds, status):
    """The full Kuhn-Wattenhofer block reduction.

    Round ``r`` (``step = (r-1) % k``) recolors every node at block offset
    ``k + step`` to its block's first free lower-half offset; when
    ``step == k - 1`` the (block, lower-offset) pairs are compacted into a
    palette of ``k`` colors per block.  Adjacent recoloring nodes are
    always in different blocks (equal block + offset would mean equal
    colors on an edge), so the value a concurrent recoloring neighbor holds
    -- old upper-half offset or new lower-half offset, both in the *other*
    block -- never passes this node's same-block filter: the in-place
    parallel round is benign.  Aligned int64 stores do not tear.
    """
    n = indptr.shape[0] - 1
    block_width = 2 * k
    # Blocks and offsets are materialized once and maintained across rounds
    # (divisions happen only here and at compactions, not every round).  A
    # neighbor's maintained pair is read under the same benign-race argument
    # as its color: its block never changes mid-round, and its offset only
    # matters when the blocks match, which concurrent recoloring excludes.
    blocks = np.empty(n, dtype=np.int64)
    offsets = np.empty(n, dtype=np.int64)
    for v in prange(n):
        blocks[v] = (colors[v] - 1) // block_width
        offsets[v] = (colors[v] - 1) % block_width
    for round_index in range(1, total_rounds + 1):
        step = (round_index - 1) % k
        for v in prange(n):
            if offsets[v] != k + step:
                continue
            block = blocks[v]
            taken = np.zeros(k, dtype=np.uint8)
            for e in range(indptr[v], indptr[v + 1]):
                u = indices[e]
                if blocks[u] != block:
                    continue
                neighbor_offset = offsets[u]
                if neighbor_offset < k:
                    taken[neighbor_offset] = 1
            replacement = np.int64(-1)
            for o in range(k):
                if taken[o] == 0:
                    replacement = o
                    break
            if replacement < 0:
                status[0] = 1
            else:
                colors[v] = block * block_width + replacement + 1
                offsets[v] = replacement
        if status[0] != 0:
            return
        if step == k - 1:
            for v in prange(n):
                colors[v] = blocks[v] * k + offsets[v] + 1
                blocks[v] = (colors[v] - 1) // block_width
                offsets[v] = (colors[v] - 1) % block_width


def edge_rank(
    indptr, indices, edge_u, edge_v, sort_rank, codes, has_codes, rank_u, rank_v
):
    """Per line-graph node, its rank among same-class incident edges.

    ``rank_u[x]`` / ``rank_v[x]`` count the same-class CSR neighbors of
    ``x`` that sort strictly before it (``sort_rank``) and share endpoint
    ``edge_u[x]`` / ``edge_v[x]``.  When ``has_codes`` is 0 the class
    filter is skipped (``codes`` may be a dummy array).  Read-only over the
    shared columns, one writer per row.
    """
    n = indptr.shape[0] - 1
    for x in prange(n):
        u = edge_u[x]
        v = edge_v[x]
        own_rank = sort_rank[x]
        count_u = np.int64(0)
        count_v = np.int64(0)
        for e in range(indptr[x], indptr[x + 1]):
            y = indices[e]
            if has_codes != 0 and codes[y] != codes[x]:
                continue
            if sort_rank[y] >= own_rank:
                continue
            nu = edge_u[y]
            nv = edge_v[y]
            if nu == u or nv == u:
                count_u += 1
            if nu == v or nv == v:
                count_v += 1
        rank_u[x] = count_u
        rank_v[x] = count_v


def luby_free_counts(undecided, taken, palette, free_counts):
    """``free_counts[i]`` = number of untaken palette colors of node ``undecided[i]``."""
    m = undecided.shape[0]
    for i in prange(m):
        v = undecided[i]
        count = np.int64(0)
        for c in range(palette):
            if taken[v, c] == 0:
                count += 1
        free_counts[i] = count


def luby_candidates(lanes, picks, taken, palette, candidate):
    """``candidate[lanes[i]]`` = the ``(picks[i]+1)``-th free color of that node."""
    m = lanes.shape[0]
    for i in prange(m):
        v = lanes[i]
        pick = picks[i]
        seen = np.int64(0)
        for c in range(palette):
            if taken[v, c] == 0:
                if seen == pick:
                    candidate[v] = c + 1
                    break
                seen += 1


def luby_absorb(announce, indptr, indices, final, undecided_mask, taken):
    """Scatter announced finals into the undecided neighbors' taken rows.

    Two announcers sharing an undecided neighbor write different columns of
    its row (their finals differ -- they kept in the same round without a
    conflict) or the same byte with the same value: idempotent byte stores,
    benign under concurrency.
    """
    m = announce.shape[0]
    for i in prange(m):
        a = announce[i]
        c = final[a] - 1
        for e in range(indptr[a], indptr[a + 1]):
            neighbor = indices[e]
            if undecided_mask[neighbor] != 0:
                taken[neighbor, c] = 1


def luby_resolve(undecided, indptr, indices, candidate, taken, keep):
    """``keep[i]`` = 1 iff node ``undecided[i]`` keeps its candidate this round.

    A node keeps when it drew a candidate, no neighbor drew the same one
    (decided neighbors hold candidate 0, so they never match), and the
    candidate is not already taken.  Read-only over the shared columns.
    """
    m = undecided.shape[0]
    for i in prange(m):
        v = undecided[i]
        c = candidate[v]
        if c == 0:
            keep[i] = 0
            continue
        ok = np.uint8(1)
        if taken[v, c - 1] != 0:
            ok = np.uint8(0)
        else:
            for e in range(indptr[v], indptr[v + 1]):
                if candidate[indices[e]] == c:
                    ok = np.uint8(0)
                    break
        keep[i] = ok
