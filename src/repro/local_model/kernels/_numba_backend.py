"""Numba kernel backend: jits the ``_loops`` reference functions.

``_loops`` is written in numba's restricted subset and imports
``numba.prange`` when available, so ``njit(parallel=True, cache=True)``
over the very same function objects yields the parallel kernels -- one
source of truth, no transcription to drift.  ``cache=True`` persists the
compiled machine code next to ``_loops.py``'s ``__pycache__``, so the
first-import compile cost is paid once per environment.

Thread counts go through ``numba.set_num_threads`` (bounded by
``NUMBA_NUM_THREADS``, which must be set before the first parallel kernel
runs -- see the README's engine section).
"""

from __future__ import annotations

from typing import Optional

from repro.local_model.kernels import _loops


class NumbaBackend:
    """Jitted facade exposing the same kernel names as the C backend."""

    name = "numba"

    def __init__(self, numba_module) -> None:
        self._numba = numba_module
        decorate = numba_module.njit(parallel=True, cache=True, nogil=True)
        for kernel in _loops.KERNEL_NAMES:
            setattr(self, kernel, decorate(getattr(_loops, kernel)))

    def max_threads(self) -> int:
        return int(self._numba.get_num_threads())

    def set_threads(self, count: int) -> None:
        self._numba.set_num_threads(max(1, int(count)))


def load() -> Optional[NumbaBackend]:
    """Jit the reference loops; ``None`` when numba is not importable."""
    try:
        import numba
    except ImportError:
        return None
    try:
        return NumbaBackend(numba)
    except Exception:  # pragma: no cover - defensive: malformed install
        return None
