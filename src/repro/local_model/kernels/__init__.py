"""Fused multi-core kernels behind the ``"compiled"`` engine.

This package is a kernel-dispatch layer over the vectorized engine: for the
hot per-round loops of the coloring pipeline (Linial recoloring, Kuhn
defective steps, the two palette reductions, the defective *edge* ranking,
and the Luby round) it provides fused single-pass CSR kernels with two
interchangeable providers --

* **numba** (``_numba_backend``): ``@njit(parallel=True, cache=True)`` over
  the reference loops in ``_loops.py``; preferred when numba imports.
* **cext** (``_c_backend``): the same loops transcribed to C with OpenMP,
  built on demand by the system compiler and loaded via ctypes; used when
  numba is absent but a C toolchain exists.

Neither is required: with no provider, :func:`get_backend` returns ``None``
and the compiled engine falls through to the numpy ``vector_run`` per phase
(counted in ``RunMetrics.compiled_fallback_phase_names``), reproducing the
vectorized engine bit for bit.  A freshly loaded provider is *probed* --
every kernel is run on a small adversarial graph and compared against the
``_loops`` reference -- so a miscompiled library degrades to the fallback
instead of corrupting colorings.

Environment knobs:

* ``REPRO_KERNEL_BACKEND``: ``auto`` (default) | ``numba`` | ``cext`` |
  ``none`` -- force a provider or disable dispatch outright.
* ``REPRO_KERNEL_THREADS``: initial thread count (see
  :func:`set_num_threads`); numba additionally respects
  ``NUMBA_NUM_THREADS`` as its upper bound.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.local_model.kernels import _loops

__all__ = [
    "get_backend",
    "backend_name",
    "backend_reason",
    "force_backend",
    "set_num_threads",
    "get_num_threads",
    "reset",
    "runner_for",
]

_RESOLVED = False
_BACKEND = None
_REASON = "backend not yet resolved"


def _probe_inputs():
    """A small adversarial instance: path + isolated node, non-monotone ids."""
    indptr = np.array([0, 1, 3, 5, 7, 9, 10, 10], dtype=np.int64)
    indices = np.array([1, 0, 2, 1, 3, 2, 4, 3, 5, 4], dtype=np.int64)
    uids = np.array([10, 3, 57, 2, 9, 40, 1], dtype=np.int64)
    return indptr, indices, uids


def _probe(backend) -> bool:
    """Run every kernel against the ``_loops`` reference; True when identical.

    The stateful kernels (reductions, Luby) get *legal* colorings so their
    documented benign races stay benign during the probe itself.
    """
    indptr, indices, uids = _probe_inputs()
    n = len(indptr) - 1
    checks = []

    colors = np.array([1, 7, 13, 19, 25, 2, 9], dtype=np.int64)
    for kernel in ("linial_round", "defective_step"):
        expected = np.zeros(n, dtype=np.int64)
        actual = np.zeros(n, dtype=np.int64)
        if kernel == "linial_round":
            _loops.linial_round(indptr, indices, uids, colors, 5, 2, expected)
            backend.linial_round(indptr, indices, uids, colors, 5, 2, actual)
        else:
            _loops.defective_step(indptr, indices, colors, 5, 2, expected)
            backend.defective_step(indptr, indices, colors, 5, 2, actual)
        checks.append(np.array_equal(expected, actual))

    legal = np.array([4, 5, 6, 4, 5, 6, 6], dtype=np.int64)
    expected, actual = legal.copy(), legal.copy()
    expected_status = np.zeros(1, dtype=np.int64)
    actual_status = np.zeros(1, dtype=np.int64)
    _loops.iter_reduce(indptr, indices, expected, 6, 3, 3, expected_status)
    backend.iter_reduce(indptr, indices, actual, 6, 3, 3, actual_status)
    checks.append(
        np.array_equal(expected, actual) and expected_status[0] == actual_status[0]
    )

    legal = np.array([7, 8, 9, 10, 11, 12, 1], dtype=np.int64)
    expected, actual = legal.copy(), legal.copy()
    expected_status[0] = actual_status[0] = 0
    _loops.kw_reduce(indptr, indices, expected, 3, 6, expected_status)
    backend.kw_reduce(indptr, indices, actual, 3, 6, actual_status)
    checks.append(
        np.array_equal(expected, actual) and expected_status[0] == actual_status[0]
    )

    edge_u = np.array([0, 1, 1, 2, 3, 0, 5], dtype=np.int64)
    edge_v = np.array([9, 9, 2, 7, 7, 2, 6], dtype=np.int64)
    sort_rank = np.array([3, 0, 6, 1, 5, 2, 4], dtype=np.int64)
    codes = np.array([0, 1, 0, 1, 0, 0, 1], dtype=np.int64)
    for has_codes in (0, 1):
        expected_u = np.zeros(n, dtype=np.int64)
        expected_v = np.zeros(n, dtype=np.int64)
        actual_u = np.zeros(n, dtype=np.int64)
        actual_v = np.zeros(n, dtype=np.int64)
        _loops.edge_rank(
            indptr, indices, edge_u, edge_v, sort_rank, codes, has_codes,
            expected_u, expected_v,
        )
        backend.edge_rank(
            indptr, indices, edge_u, edge_v, sort_rank, codes, has_codes,
            actual_u, actual_v,
        )
        checks.append(
            np.array_equal(expected_u, actual_u)
            and np.array_equal(expected_v, actual_v)
        )

    palette = 4
    taken = np.zeros((n, palette), dtype=np.uint8)
    taken[1, 0] = taken[1, 2] = taken[3, 3] = taken[6, 1] = 1
    undecided = np.array([0, 2, 3, 6], dtype=np.int64)
    expected = np.zeros(len(undecided), dtype=np.int64)
    actual = np.zeros(len(undecided), dtype=np.int64)
    _loops.luby_free_counts(undecided, taken, palette, expected)
    backend.luby_free_counts(undecided, taken, palette, actual)
    checks.append(np.array_equal(expected, actual))

    lanes = np.array([0, 3, 6], dtype=np.int64)
    picks = np.array([2, 1, 0], dtype=np.int64)
    expected = np.zeros(n, dtype=np.int64)
    actual = np.zeros(n, dtype=np.int64)
    _loops.luby_candidates(lanes, picks, taken, palette, expected)
    backend.luby_candidates(lanes, picks, taken, palette, actual)
    checks.append(np.array_equal(expected, actual))

    final = np.array([0, 2, 0, 0, 4, 0, 0], dtype=np.int64)
    announce = np.array([1, 4], dtype=np.int64)
    undecided_mask = np.array([1, 0, 1, 1, 0, 1, 1], dtype=np.uint8)
    expected_taken, actual_taken = taken.copy(), taken.copy()
    _loops.luby_absorb(announce, indptr, indices, final, undecided_mask, expected_taken)
    backend.luby_absorb(announce, indptr, indices, final, undecided_mask, actual_taken)
    checks.append(np.array_equal(expected_taken, actual_taken))

    candidate = np.array([2, 0, 2, 1, 0, 3, 4], dtype=np.int64)
    expected = np.zeros(len(undecided), dtype=np.uint8)
    actual = np.zeros(len(undecided), dtype=np.uint8)
    _loops.luby_resolve(undecided, indptr, indices, candidate, expected_taken, expected)
    backend.luby_resolve(undecided, indptr, indices, candidate, expected_taken, actual)
    checks.append(np.array_equal(expected, actual))

    return all(checks)


def _resolve():
    global _RESOLVED, _BACKEND, _REASON
    if _RESOLVED:
        return
    _RESOLVED = True
    requested = os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip().lower()
    if requested in ("none", "off", "0", "disabled"):
        _BACKEND, _REASON = None, "disabled via REPRO_KERNEL_BACKEND"
        return
    if requested not in ("auto", "numba", "cext"):
        _BACKEND, _REASON = None, f"unknown REPRO_KERNEL_BACKEND {requested!r}"
        return

    providers = []
    if requested in ("auto", "numba"):
        from repro.local_model.kernels import _numba_backend

        providers.append(_numba_backend.load)
    if requested in ("auto", "cext"):
        from repro.local_model.kernels import _c_backend

        providers.append(_c_backend.load)

    reasons = []
    for load in providers:
        try:
            backend = load()
        except Exception as exc:  # pragma: no cover - defensive
            reasons.append(f"{load.__module__}: {exc!r}")
            continue
        if backend is None:
            reasons.append(f"{load.__module__}: unavailable")
            continue
        try:
            healthy = _probe(backend)
        except Exception as exc:
            reasons.append(f"{backend.name}: probe raised {exc!r}")
            continue
        if not healthy:
            reasons.append(f"{backend.name}: probe mismatch vs reference loops")
            continue
        _BACKEND, _REASON = backend, f"{backend.name} (probed ok)"
        threads = os.environ.get("REPRO_KERNEL_THREADS")
        if threads:
            try:
                backend.set_threads(int(threads))
            except ValueError:
                pass
        return
    _BACKEND = None
    _REASON = "; ".join(reasons) if reasons else "no kernel provider available"


def get_backend():
    """The active kernel backend, or ``None`` when dispatch is unavailable."""
    _resolve()
    return _BACKEND


def backend_name() -> Optional[str]:
    """``"numba"`` / ``"cext"`` / ``None``."""
    backend = get_backend()
    return backend.name if backend is not None else None


def backend_reason() -> str:
    """Human-readable account of how the backend was (not) selected."""
    _resolve()
    return _REASON


def set_num_threads(count: int) -> None:
    """Set the kernel thread count (no-op without a backend)."""
    backend = get_backend()
    if backend is not None:
        backend.set_threads(count)


def get_num_threads() -> int:
    """The kernel thread count the active backend will use (1 without one)."""
    backend = get_backend()
    return backend.max_threads() if backend is not None else 1


def reset() -> None:
    """Drop the cached backend so the next call re-resolves (tests, env flips)."""
    global _RESOLVED, _BACKEND, _REASON
    _RESOLVED = False
    _BACKEND = None
    _REASON = "backend not yet resolved"


def force_backend(backend, reason: str = "forced") -> "callable":
    """Install ``backend`` as the resolved provider, bypassing probe/env logic.

    This is the seam the fault injector (and tests) use to simulate a backend
    that breaks mid-run: install a poisoned object here and every compiled
    scheduler constructed afterwards dispatches into it.  Returns a restore
    callable that reinstates the previous resolution state exactly; callers
    must invoke it (typically in a ``finally``) because pool workers are
    long-lived and an installed backend would leak into unrelated runs.
    """
    global _RESOLVED, _BACKEND, _REASON
    previous = (_RESOLVED, _BACKEND, _REASON)
    _RESOLVED, _BACKEND, _REASON = True, backend, reason

    def restore() -> None:
        global _RESOLVED, _BACKEND, _REASON
        _RESOLVED, _BACKEND, _REASON = previous

    return restore


def runner_for(phase):
    """The compiled runner for ``phase``, or ``None`` (late import, no cycles)."""
    from repro.local_model.kernels.adapters import runner_for as _runner_for

    return _runner_for(phase)
