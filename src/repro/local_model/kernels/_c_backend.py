"""C/OpenMP kernel backend: builds ``csrc/kernels.c`` on demand via gcc.

The shared library is compiled once per source version -- the artifact name
embeds a SHA-256 of the C source plus the compile flags, so editing the
source or flags triggers a rebuild and stale artifacts are simply ignored.
Artifacts land in ``_build/`` next to this file when writable (gitignored),
else under the system temp directory, so read-only installs still work.

Loaded through :mod:`ctypes`; every wrapper presents the exact Python
signature of its ``_loops`` reference, so backends are drop-in
interchangeable for the adapters and the test suite.

When OpenMP is unavailable the build retries without it (serial kernels,
still fused); when no C compiler is present :func:`load` returns ``None``
and the engine falls back per phase.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

_SOURCE = Path(__file__).with_name("csrc") / "kernels.c"
_CFLAGS = ("-O3", "-std=c99", "-shared", "-fPIC")
_OPENMP_FLAG = "-fopenmp"

#: Compile-step wall-clock budget (seconds); override via the env var below.
#: A wedged system compiler then costs one bounded wait instead of hanging
#: the first compiled run forever.
_COMPILE_TIMEOUT_ENV = "REPRO_KERNEL_COMPILE_TIMEOUT"
_COMPILE_TIMEOUT_DEFAULT = 120.0

_I64 = ctypes.c_longlong
_PTR = ctypes.c_void_p


def _build_dir() -> Path:
    local = Path(__file__).with_name("_build")
    try:
        local.mkdir(exist_ok=True)
        probe = local / ".writable"
        probe.touch()
        probe.unlink()
        return local
    except OSError:
        fallback = Path(tempfile.gettempdir()) / "repro-kernels"
        fallback.mkdir(exist_ok=True)
        return fallback


def _compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _compile_timeout() -> float:
    raw = os.environ.get(_COMPILE_TIMEOUT_ENV)
    if raw:
        try:
            return max(1.0, float(raw))
        except ValueError:
            pass
    return _COMPILE_TIMEOUT_DEFAULT


def _compile(source: Path, compiler: str, use_openmp: bool) -> Optional[Path]:
    flags = list(_CFLAGS) + ([_OPENMP_FLAG] if use_openmp else [])
    tag = hashlib.sha256(
        source.read_bytes() + " ".join(flags).encode()
    ).hexdigest()[:16]
    artifact = _build_dir() / f"kernels-{tag}.so"
    if artifact.exists():
        return artifact
    # Failure memo: a previous build of this exact (source, flags) pair timed
    # out or failed, so skip straight to the numba/numpy fallback instead of
    # re-invoking (and potentially re-hanging on) the system compiler every
    # process start.  The memo is keyed by the same content tag as the
    # artifact, so editing the source or flags retries automatically; delete
    # the file to retry by hand.
    memo = artifact.with_suffix(".failed")
    if memo.exists():
        return None
    scratch = artifact.with_suffix(f".{os.getpid()}.tmp")
    command = [compiler, *flags, str(source), "-o", str(scratch)]
    try:
        subprocess.run(
            command,
            check=True,
            capture_output=True,
            text=True,
            timeout=_compile_timeout(),
        )
    except (subprocess.SubprocessError, OSError) as error:
        scratch.unlink(missing_ok=True)
        try:
            memo.write_text(f"{type(error).__name__}: {error}\n", encoding="utf-8")
        except OSError:
            pass
        return None
    os.replace(scratch, artifact)  # atomic under concurrent builders
    return artifact


def _as_i64(array: np.ndarray) -> int:
    if array.dtype != np.int64 or not array.flags.c_contiguous:
        raise ValueError("kernel arrays must be C-contiguous int64")
    return array.ctypes.data


def _as_u8(array: np.ndarray) -> int:
    if array.dtype != np.uint8 or not array.flags.c_contiguous:
        raise ValueError("kernel flag arrays must be C-contiguous uint8")
    return array.ctypes.data


class CExtensionBackend:
    """ctypes facade over the compiled shared library."""

    name = "cext"

    def __init__(self, library: ctypes.CDLL, openmp: bool) -> None:
        self._lib = library
        self.openmp = openmp
        library.repro_max_threads.restype = _I64
        library.repro_max_threads.argtypes = ()
        library.repro_set_threads.restype = None
        library.repro_set_threads.argtypes = (_I64,)
        for symbol, argtypes in _SIGNATURES.items():
            handle = getattr(library, symbol)
            handle.restype = None
            handle.argtypes = argtypes

    def max_threads(self) -> int:
        return int(self._lib.repro_max_threads())

    def set_threads(self, count: int) -> None:
        self._lib.repro_set_threads(int(count))

    # -- kernel wrappers (signatures mirror repro.local_model.kernels._loops) --

    def linial_round(self, indptr, indices, uids, colors, q, num_digits, out):
        self._lib.linial_round(
            _as_i64(indptr), _as_i64(indices), _as_i64(uids), _as_i64(colors),
            len(indptr) - 1, q, num_digits, _as_i64(out),
        )

    def defective_step(self, indptr, indices, colors, q, num_digits, out):
        self._lib.defective_step(
            _as_i64(indptr), _as_i64(indices), _as_i64(colors),
            len(indptr) - 1, q, num_digits, _as_i64(out),
        )

    def iter_reduce(self, indptr, indices, colors, palette, target, total_rounds, status):
        self._lib.iter_reduce(
            _as_i64(indptr), _as_i64(indices), _as_i64(colors),
            len(indptr) - 1, palette, target, total_rounds, _as_i64(status),
        )

    def kw_reduce(self, indptr, indices, colors, k, total_rounds, status):
        self._lib.kw_reduce(
            _as_i64(indptr), _as_i64(indices), _as_i64(colors),
            len(indptr) - 1, k, total_rounds, _as_i64(status),
        )

    def edge_rank(self, indptr, indices, edge_u, edge_v, sort_rank, codes, has_codes, rank_u, rank_v):
        self._lib.edge_rank(
            _as_i64(indptr), _as_i64(indices), _as_i64(edge_u), _as_i64(edge_v),
            _as_i64(sort_rank), _as_i64(codes), has_codes,
            len(indptr) - 1, _as_i64(rank_u), _as_i64(rank_v),
        )

    def luby_free_counts(self, undecided, taken, palette, free_counts):
        self._lib.luby_free_counts(
            _as_i64(undecided), len(undecided), _as_u8(taken), palette,
            _as_i64(free_counts),
        )

    def luby_candidates(self, lanes, picks, taken, palette, candidate):
        self._lib.luby_candidates(
            _as_i64(lanes), len(lanes), _as_i64(picks), _as_u8(taken), palette,
            _as_i64(candidate),
        )

    def luby_absorb(self, announce, indptr, indices, final, undecided_mask, taken):
        self._lib.luby_absorb(
            _as_i64(announce), len(announce), _as_i64(indptr), _as_i64(indices),
            _as_i64(final), _as_u8(undecided_mask), _as_u8(taken),
            taken.shape[1],
        )

    def luby_resolve(self, undecided, indptr, indices, candidate, taken, keep):
        self._lib.luby_resolve(
            _as_i64(undecided), len(undecided), _as_i64(indptr),
            _as_i64(indices), _as_i64(candidate), _as_u8(taken),
            taken.shape[1], _as_u8(keep),
        )


_SIGNATURES = {
    "linial_round": (_PTR, _PTR, _PTR, _PTR, _I64, _I64, _I64, _PTR),
    "defective_step": (_PTR, _PTR, _PTR, _I64, _I64, _I64, _PTR),
    "iter_reduce": (_PTR, _PTR, _PTR, _I64, _I64, _I64, _I64, _PTR),
    "kw_reduce": (_PTR, _PTR, _PTR, _I64, _I64, _I64, _PTR),
    "edge_rank": (_PTR, _PTR, _PTR, _PTR, _PTR, _PTR, _I64, _I64, _PTR, _PTR),
    "luby_free_counts": (_PTR, _I64, _PTR, _I64, _PTR),
    "luby_candidates": (_PTR, _I64, _PTR, _PTR, _I64, _PTR),
    "luby_absorb": (_PTR, _I64, _PTR, _PTR, _PTR, _PTR, _PTR, _I64),
    "luby_resolve": (_PTR, _I64, _PTR, _PTR, _PTR, _PTR, _I64, _PTR),
}


def load() -> Optional[CExtensionBackend]:
    """Build (if needed) and load the C backend; ``None`` when unavailable."""
    if not _SOURCE.exists():
        return None
    compiler = _compiler()
    if compiler is None:
        return None
    for use_openmp in (True, False):
        artifact = _compile(_SOURCE, compiler, use_openmp)
        if artifact is None:
            continue
        try:
            library = ctypes.CDLL(str(artifact))
        except OSError:
            continue
        return CExtensionBackend(library, openmp=use_openmp)
    return None
