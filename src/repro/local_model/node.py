"""The per-vertex processor abstraction.

Each vertex of the communication graph hosts a :class:`Node`.  A node owns a
mutable ``state`` dictionary that phases read and write, an ``inbox`` that the
scheduler fills with the messages delivered in the current round, and a
``halted`` flag that the node's phase sets when it has terminated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Tuple


@dataclass
class Node:
    """State container for a single vertex of the network.

    Attributes
    ----------
    node_id:
        The vertex identifier in the communication graph.  May be any hashable
        value (plain integers for ordinary graphs, canonical edge tuples for
        line graphs).
    unique_id:
        The distinct identity number from ``{1, ..., n}`` the paper assumes
        every processor holds.  Assigned by :class:`~repro.local_model.network.Network`.
    neighbors:
        Tuple of neighbor identifiers, sorted for determinism.
    state:
        Per-phase mutable state.  Reset by the scheduler between pipelines but
        shared between phases of the same pipeline so that later phases can
        consume the outputs of earlier ones.
    halted:
        ``True`` once the currently running phase has terminated at this node.
    """

    node_id: Hashable
    unique_id: int
    neighbors: Tuple[Hashable, ...]
    state: Dict[str, Any] = field(default_factory=dict)
    halted: bool = False

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)

    def reset_for_phase(self) -> None:
        """Clear the per-phase halted flag (state is preserved across phases)."""
        self.halted = False
