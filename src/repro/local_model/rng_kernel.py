"""Batched bit-exact replication of CPython's string-seeded random draws.

The Luby baseline derives each candidate color from
``random.Random(f"{seed}:{unique_id}:{round}").choice(available)`` so that
runs are reproducible and independent across vertices.  ``choice`` indexes
the sequence with ``_randbelow(len(available))``, so the *entire* draw is
determined by one integer: the first accepted ``getrandbits(k)`` of a
Mersenne Twister seeded from the key string.  Per draw CPython pays for a
SHA-512 of the key, a big-int conversion, and ``init_by_array`` over the
624-word state -- about 9 microseconds, which dominates any vectorized run
of the phase.

This module reproduces the draw *bit for bit* at a fraction of that cost:

* the version-2 string seeding of :meth:`random.Random.seed` is
  ``a = int.from_bytes(key + sha512(key).digest(), 'big')``; the SHA-512
  stays on :mod:`hashlib` (OpenSSL already runs it in ~0.3us), and the C
  seeder's split of ``a`` into little-endian 32-bit key words is a single
  reversed-byte array view;
* ``init_by_array`` -- the two sequential mixing loops over the 624-word
  state -- runs across all lanes simultaneously, state-index-major, so
  every one of its 1247 steps is a handful of contiguous array operations;
* ``_randbelow`` consumes Mersenne Twister outputs on demand: the ``w``-th
  output only needs state words ``w``, ``w+1`` and ``w+397``, so no full
  twist is materialized and each rejection retry is one masked gather.

Every entry point falls back to :func:`scalar_randbelow` (which *is*
``random.Random``) for degenerate cases -- tiny batches, oversized keys or
limits, absurd rejection streaks -- so the vector path is a pure
optimization.  ``tests/test_rng_kernel.py`` locks the equivalence with
hypothesis; the Luby engine-equivalence suite locks it end to end.
"""

from __future__ import annotations

import random
import sys
from functools import lru_cache
from hashlib import sha512
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["StringSeededDraws", "scalar_randbelow"]

#: Mersenne Twister state size (words).
_MT_N = 624

#: Below this many lanes the per-call numpy overhead of the 1247-step
#: ``init_by_array`` loop exceeds the scalar cost; fall back to CPython.
SCALAR_CUTOFF = 192

#: Lanes are processed in chunks: ``init_by_array`` streams the whole
#: ``(624, lanes)`` state matrix twice, so the chunk is sized to keep one
#: state row plus its neighbors cache-resident (~40 MB matrix).
_CHUNK = 16384

#: ``getrandbits(k)`` consumes one MT word only for ``k <= 32``; larger
#: limits take the scalar path.
_MAX_VECTOR_LIMIT = 1 << 32

#: Keys whose integer form exceeds 624 words would change the first mixing
#: loop's length; far beyond any real seed/uid, but guarded regardless.
_MAX_KEY_BYTES = (_MT_N - 1) * 4

_U32 = np.uint32
_U64 = np.uint64


# --------------------------------------------------------------------------- #
# Mersenne Twister seeding + on-demand outputs
# --------------------------------------------------------------------------- #


@lru_cache(maxsize=1)
def _mt_base_state() -> np.ndarray:
    """``init_genrand(19650218)`` -- the key-independent prefix of seeding."""
    state = [19650218]
    for i in range(1, _MT_N):
        prev = state[-1]
        state.append((1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF)
    return np.array(state, dtype=_U32)


def _key_words(blobs: np.ndarray) -> np.ndarray:
    """The ``init_by_array`` key words of each row's seeding integer.

    ``blobs`` is ``(g, T)`` uint8 holding ``key + sha512(key).digest()``
    per row -- the big-endian bytes of ``int.from_bytes(..., 'big')``.  The
    C seeder splits that (positive) integer into little-endian 32-bit
    words; the word count is fixed by the bit length, and every key here
    starts with an ASCII digit or ``-`` (a 6-bit leading byte).  Returns
    ``(keylen, g)`` uint32, key-word-major.
    """
    g, total = blobs.shape
    bits = (total - 1) * 8 + 6
    keylen = (bits - 1) // 32 + 1
    buffer = np.zeros((g, keylen * 4), dtype=np.uint8)
    buffer[:, :total] = blobs[:, ::-1]
    if sys.byteorder == "little":
        words = buffer.view(_U32)
    else:  # pragma: no cover - exercised only on big-endian hosts
        quads = buffer.reshape(g, keylen, 4).astype(_U32)
        words = (
            quads[:, :, 0]
            | (quads[:, :, 1] << _U32(8))
            | (quads[:, :, 2] << _U32(16))
            | (quads[:, :, 3] << _U32(24))
        )
    return np.ascontiguousarray(words.T)


def _init_by_array(key_words: np.ndarray) -> np.ndarray:
    """Batched ``init_by_array``: ``(keylen, g)`` key -> ``(624, g)`` state."""
    keylen, g = key_words.shape
    # key[j] + j is what the first loop adds; precompute it per key word.
    key_plus = key_words + np.arange(keylen, dtype=_U32)[:, None]
    state = np.empty((_MT_N, g), dtype=_U32)
    state[:] = _mt_base_state()[:, None]
    tmp = np.empty(g, dtype=_U32)
    mult1 = _U32(1664525)
    mult2 = _U32(1566083941)
    shift = _U32(30)

    i, j = 1, 0
    for _ in range(max(_MT_N, keylen)):
        prev = state[i - 1]
        np.right_shift(prev, shift, out=tmp)
        np.bitwise_xor(tmp, prev, out=tmp)
        np.multiply(tmp, mult1, out=tmp)
        np.bitwise_xor(state[i], tmp, out=state[i])
        state[i] += key_plus[j]
        i += 1
        j += 1
        if i >= _MT_N:
            state[0] = state[_MT_N - 1]
            i = 1
        if j >= keylen:
            j = 0
    for _ in range(_MT_N - 1):
        prev = state[i - 1]
        np.right_shift(prev, shift, out=tmp)
        np.bitwise_xor(tmp, prev, out=tmp)
        np.multiply(tmp, mult2, out=tmp)
        np.bitwise_xor(state[i], tmp, out=state[i])
        state[i] -= _U32(i)
        i += 1
        if i >= _MT_N:
            state[0] = state[_MT_N - 1]
            i = 1
    state[0] = _U32(0x80000000)
    return state


def _output_words(state: np.ndarray, w: int, lanes: np.ndarray) -> np.ndarray:
    """The ``w``-th MT output of the selected lanes, without a full twist.

    Valid for ``w <= 226`` (the first twist region, where word ``w`` only
    depends on pre-twist words ``w``, ``w+1`` and ``w+397``).
    """
    a = state[w, lanes]
    b = state[w + 1, lanes]
    y = (a & _U32(0x80000000)) | (b & _U32(0x7FFFFFFF))
    value = state[w + 397, lanes] ^ (y >> _U32(1)) ^ ((y & _U32(1)) * _U32(0x9908B0DF))
    value ^= value >> _U32(11)
    value ^= (value << _U32(7)) & _U32(0x9D2C5680)
    value ^= (value << _U32(15)) & _U32(0xEFC60000)
    value ^= value >> _U32(18)
    return value


_POWERS_OF_TWO = np.int64(1) << np.arange(33, dtype=np.int64)


def _randbelow_from_states(
    state: np.ndarray, limits: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``_randbelow(limit)`` per lane from seeded states.

    Returns ``(draws, unresolved)`` where ``unresolved`` lists the (rare)
    lanes that exhausted the on-demand word budget and need the scalar path.
    """
    g = state.shape[1]
    draws = np.zeros(g, dtype=np.int64)
    # bit_length(L): index of the first power of two strictly above L.
    k = np.searchsorted(_POWERS_OF_TWO, limits, side="right").astype(_U64)
    shifts = _U64(32) - k
    pending = np.arange(g, dtype=np.int64)
    w = 0
    while len(pending) and w <= 226:
        r = _output_words(state, w, pending).astype(_U64) >> shifts[pending]
        accepted = r < limits[pending].astype(_U64)
        draws[pending[accepted]] = r[accepted].astype(np.int64)
        pending = pending[~accepted]
        w += 1
    return draws, pending


# --------------------------------------------------------------------------- #
# Public batched draw API
# --------------------------------------------------------------------------- #


def scalar_randbelow(seed: int, unique_id: int, round_index: int, limit: int) -> int:
    """The reference draw: ``random.Random(key)._randbelow(limit)``.

    ``random.Random(key).choice(seq)`` equals ``seq[scalar_randbelow(...,
    len(seq))]`` -- ``choice`` indexes with ``_randbelow`` and nothing else
    consumes the stream.
    """
    return random.Random(f"{seed}:{unique_id}:{round_index}")._randbelow(limit)


class StringSeededDraws:
    """Per-round batched draws for one ``(seed, unique_ids)`` population.

    Prepared once per phase execution: the unique ids' decimal byte strings
    are encoded up front, so a round's per-lane work is one bytes
    concatenation and one :func:`hashlib.sha512` call -- everything after
    the digest is array code.

    ``draw(rows, limits, round_index)`` returns, per lane, exactly
    ``random.Random(f"{seed}:{unique_ids[row]}:{round_index}")._randbelow(limit)``.
    """

    def __init__(
        self,
        seed: int,
        unique_ids: np.ndarray,
        scalar_cutoff: int = SCALAR_CUTOFF,
    ) -> None:
        self._seed = int(seed)
        self._prefix = f"{self._seed}:".encode("ascii")
        self._uid_strs: List[str] = [str(int(u)) for u in unique_ids.tolist()]
        self._uid_bytes: List[bytes] = [s.encode("ascii") for s in self._uid_strs]
        self._widths = np.fromiter(
            (len(b) for b in self._uid_bytes), np.int64, count=len(self._uid_bytes)
        )
        self._scalar_cutoff = scalar_cutoff

    # ------------------------------------------------------------------ #

    def draw(
        self, rows: np.ndarray, limits: np.ndarray, round_index: int
    ) -> np.ndarray:
        """Batched ``_randbelow`` draws for dense-index lanes ``rows``.

        ``limits`` must be positive.  Lanes with ``limit == 1`` always draw
        index 0 (``choice`` of a singleton) and skip the stream entirely --
        the rejection loop cannot change a forced outcome.
        """
        count = len(rows)
        out = np.zeros(count, dtype=np.int64)
        lanes = np.flatnonzero(limits > 1)
        if len(lanes) == 0:
            return out
        if len(lanes) <= self._scalar_cutoff:
            self._scalar_into(out, lanes, rows, limits, round_index)
            return out
        suffix = b":%d" % round_index
        for start in range(0, len(lanes), _CHUNK):
            chunk = lanes[start : start + _CHUNK]
            self._draw_chunk(out, chunk, rows, limits, round_index, suffix)
        return out

    # ------------------------------------------------------------------ #

    def _scalar_into(
        self,
        out: np.ndarray,
        lanes: np.ndarray,
        rows: np.ndarray,
        limits: np.ndarray,
        round_index: int,
    ) -> None:
        seed = self._seed
        uid_strs = self._uid_strs
        for lane in lanes.tolist():
            key = f"{seed}:{uid_strs[rows[lane]]}:{round_index}"
            out[lane] = random.Random(key)._randbelow(int(limits[lane]))

    def _draw_chunk(
        self,
        out: np.ndarray,
        lanes: np.ndarray,
        rows: np.ndarray,
        limits: np.ndarray,
        round_index: int,
        suffix: bytes,
    ) -> None:
        chunk_rows = rows[lanes]
        chunk_limits = limits[lanes].astype(np.int64)
        widths = self._widths[chunk_rows]
        prefix = self._prefix
        uid_bytes = self._uid_bytes
        base_len = len(prefix) + len(suffix)
        # Buckets keyed by init_by_array key length: byte blobs of equal
        # total width share one packing pass, equal keylens one init pass.
        buckets: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        scalars: List[np.ndarray] = []
        for width in np.unique(widths).tolist():
            members = np.flatnonzero(widths == width)
            total = base_len + int(width) + 64
            if (
                total > _MAX_KEY_BYTES
                or int(chunk_limits[members].max()) >= _MAX_VECTOR_LIMIT
            ):
                scalars.append(members)
                continue
            keys = [
                prefix + uid_bytes[row] + suffix
                for row in chunk_rows[members].tolist()
            ]
            digests = [sha512(key).digest() for key in keys]
            blobs = np.empty((len(members), total), dtype=np.uint8)
            blobs[:, : total - 64] = np.frombuffer(
                b"".join(keys), dtype=np.uint8
            ).reshape(len(members), total - 64)
            blobs[:, total - 64 :] = np.frombuffer(
                b"".join(digests), dtype=np.uint8
            ).reshape(len(members), 64)
            words = _key_words(blobs)
            buckets.setdefault(words.shape[0], []).append((members, words))
        for parts_list in buckets.values():
            members = np.concatenate([m for m, _ in parts_list])
            words = np.concatenate([w for _, w in parts_list], axis=1)
            state = _init_by_array(words)
            draws, pending = _randbelow_from_states(state, chunk_limits[members])
            out[lanes[members]] = draws
            if len(pending):
                scalars.append(members[pending])
        for members in scalars:
            self._scalar_into(out, lanes[members], rows, limits, round_index)
