"""The vectorized color-phase engine.

The batched engine (:mod:`repro.local_model.batched`) removed the per-message
bookkeeping but still executes one Python callback per node per round.  For
the paper's *pure-color* phases -- Linial's set-system recoloring, the
Kuhn-Wattenhofer block reduction, the defective polynomial steps, the
``psi``-selection loop -- a round's messages are just the nodes' current
colors, so the entire round is expressible as array arithmetic over the CSR
adjacency of a :class:`~repro.local_model.fast_network.FastNetwork`.

:class:`VectorizedScheduler` runs exactly those phases as numpy kernels and
transparently falls back to :class:`~repro.local_model.batched.BatchedScheduler`
for any phase that does not declare one -- a pipeline may freely mix both
kinds.  A phase opts in by setting ``supports_vectorized = True`` and
implementing ``vector_run(ctx)``, where ``ctx`` is the :class:`VectorContext`
defined here.  The contract mirrors the scalar callbacks bit for bit:

* the final per-node state dictionaries must be *identical* to what the
  reference scheduler produces (including internal scratch keys);
* the phase's :class:`~repro.local_model.metrics.PhaseMetrics` must be
  identical -- rounds, message count, total words, maximum message size.

``tests/test_engine_equivalence.py`` and the golden fixtures enforce both,
for all three engines, across the whole algorithm zoo.  The metric side is
made hard to get wrong by the charging helpers on :class:`VectorContext`:
a uniform broadcast phase (every live node announces one scalar per round,
all nodes halt together) is fully described by its round count.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import InvalidParameterError, RoundLimitExceeded, SimulationError
from repro.local_model.algorithm import LocalView, PhasePipeline, SynchronousPhase
from repro.local_model.batched import BatchedScheduler
from repro.local_model.fast_network import FastNetwork
from repro.local_model.metrics import PhaseMetrics, RunMetrics
from repro.local_model.state_table import StateTable


class VectorContext:
    """Everything a ``vector_run`` kernel may touch.

    The context hides the backing representation of the node states: when a
    pipeline runs through :meth:`VectorizedScheduler.run_table` the backing
    is a :class:`~repro.local_model.state_table.StateTable` and column reads
    and writes are pure array operations; otherwise it is the dense list of
    per-node state dictionaries.  Kernels use the accessors below and work
    identically (bit for bit) on both backings.

    Attributes
    ----------
    fast:
        The CSR view the phase runs on.
    metrics:
        The phase's metrics object, filled in through the charging helpers.
    round_limit:
        The phase's round budget (``round_limit_factor * max_rounds``);
        :meth:`check_round_budget` enforces it with the scheduler's exact
        exception.
    """

    def __init__(
        self,
        fast: FastNetwork,
        states: Optional[List[Dict[str, Any]]],
        metrics: PhaseMetrics,
        round_limit: int,
        phase_name: str,
        table: Optional[StateTable] = None,
        views_provider: Optional[Callable[[], List[LocalView]]] = None,
    ) -> None:
        if (states is None) == (table is None):
            raise SimulationError(
                "VectorContext requires exactly one backing: states or table"
            )
        self.fast = fast
        self._states = states
        self.table = table
        self.metrics = metrics
        self.round_limit = round_limit
        self.phase_name = phase_name
        self._views_provider = views_provider
        # Dict-backed runs: int64 mirrors of columns already gathered, so a
        # kernel reading the same key twice pays the per-node Python
        # iteration once.  Bypassed entirely (and discarded) the moment a
        # caller takes the raw ``states`` escape hatch, because from then on
        # the dicts can change behind the mirror's back.
        self._column_cache: Dict[str, np.ndarray] = {}
        self._column_cache_enabled = True

    # ------------------------------------------------------------------ #
    # State columns
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> List[Dict[str, Any]]:
        """The per-node state dictionaries (dict-backed contexts only).

        Kept for kernels that genuinely need per-node Python values; prefer
        the column accessors, which also work on the columnar backing.
        """
        if self._states is None:
            raise SimulationError(
                f"phase {self.phase_name!r} asked for per-node state dicts on a "
                "columnar (StateTable) run; use the VectorContext column accessors"
            )
        self._column_cache_enabled = False
        self._column_cache.clear()
        return self._states

    @property
    def views(self) -> List[LocalView]:
        """The per-node :class:`LocalView` objects (built lazily)."""
        if self._views_provider is None:
            raise SimulationError(
                f"phase {self.phase_name!r} asked for LocalViews but none are available"
            )
        return self._views_provider()

    def column(self, key: str) -> np.ndarray:
        """Gather ``state[key]`` over all nodes into a fresh ``int64`` array.

        On the columnar backing this is a :class:`StateTable` column read.
        On the dict backing the context keeps an int64 mirror per key: the
        per-node ``np.fromiter`` gather runs at most once per key, and a
        column the kernel itself wrote through :meth:`write_column` is
        served from the mirror without ever re-touching the dicts.
        """
        if self.table is not None:
            return self.table.get_ints(key)
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached.copy()
        values = np.fromiter(
            (state[key] for state in self._states),
            dtype=np.int64,
            count=len(self._states),
        )
        if self._column_cache_enabled:
            self._column_cache[key] = values.copy()
        return values

    def unique_ids(self) -> np.ndarray:
        """The nodes' distinct identity numbers (``int64``, dense order)."""
        return self.fast.unique_ids_np

    def write_column(self, key: str, values: np.ndarray) -> None:
        """Scatter ``values`` into ``state[key]`` as plain Python ints."""
        if self.table is not None:
            self.table.set_ints(key, values)
            return
        for state, value in zip(self._states, values.tolist()):
            state[key] = value
        if self._column_cache_enabled:
            self._column_cache[key] = np.asarray(values, dtype=np.int64).copy()

    def write_value(self, key: str, value: Any) -> None:
        """Write the same (immutable) value into ``state[key]`` everywhere."""
        if self.table is not None:
            if type(value) is int:
                self.table.fill_int(key, value)
            else:
                self.table.fill_object(key, value)
            return
        for state in self._states:
            state[key] = value
        if self._column_cache_enabled and type(value) is int:
            self._column_cache[key] = np.full(
                len(self._states), value, dtype=np.int64
            )
        else:
            self._column_cache.pop(key, None)

    def write_objects(self, key: str, values: List[Any]) -> None:
        """Write one (arbitrary) Python value per node into ``state[key]``."""
        if self.table is not None:
            self.table.set_objects(key, values)
            return
        for state, value in zip(self._states, values):
            state[key] = value
        self._column_cache.pop(key, None)

    def read_values(self, key: str) -> List[Any]:
        """Gather ``state[key]`` over all nodes as plain Python values."""
        if self.table is not None:
            return self.table.get_values(key)
        return [state[key] for state in self._states]

    def write_values(self, key: str, values: List[Any]) -> None:
        """Write per-node Python values, re-typing the column as needed."""
        if self.table is not None:
            self.table.set_values(key, values)
            return
        for state, value in zip(self._states, values):
            state[key] = value
        self._column_cache.pop(key, None)

    def copy_key(self, source_key: str, target_key: str) -> None:
        """``state[target] = state[source]`` on every node, kind-preserving."""
        if self.table is not None:
            self.table.copy_column(source_key, target_key)
            return
        for state in self._states:
            state[target_key] = state[source_key]
        cached = self._column_cache.get(source_key)
        if cached is not None and self._column_cache_enabled:
            self._column_cache[target_key] = cached.copy()
        else:
            self._column_cache.pop(target_key, None)

    # ------------------------------------------------------------------ #
    # Adjacency gathers
    # ------------------------------------------------------------------ #

    def gather_neighbors(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The concatenated neighbor lists of ``nodes``.

        Returns ``(local_rows, neighbors)``: CSR entry ``e`` of the result is
        the edge from ``nodes[local_rows[e]]`` to dense index
        ``neighbors[e]``.  Neighbor order within a node is the deterministic
        network order, matching the scalar engines' inbox iteration order.
        """
        fast = self.fast
        lengths = fast.degrees_np[nodes]
        total = int(lengths.sum())
        local_rows = np.repeat(np.arange(len(nodes), dtype=np.int64), lengths)
        if total == 0:
            return local_rows, np.zeros(0, dtype=np.int64)
        starts = np.repeat(fast.indptr_np[nodes], lengths)
        offsets = np.zeros(len(nodes), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
        return local_rows, fast.indices_np[starts + within]

    # ------------------------------------------------------------------ #
    # Metric charging
    # ------------------------------------------------------------------ #

    def check_round_budget(self, rounds: int) -> None:
        """Raise exactly like the scalar engines when ``rounds`` exceeds the budget."""
        if rounds > self.round_limit:
            raise RoundLimitExceeded(
                f"phase {self.phase_name!r} exceeded its round budget of "
                f"{self.round_limit}"
            )

    def charge_uniform_broadcast(self, rounds: int, payload_words: int = 1) -> None:
        """Account ``rounds`` rounds in which *every* node broadcasts one payload.

        This is the exact cost the scalar engines measure for a phase in
        which all nodes stay live until a common final round and broadcast a
        ``payload_words``-word payload each round: ``degree`` messages per
        node per round.
        """
        self.check_round_budget(rounds)
        nnz = len(self.fast.indices)
        metrics = self.metrics
        metrics.rounds = rounds
        metrics.messages = rounds * nnz
        metrics.total_words = rounds * nnz * payload_words
        metrics.max_message_words = payload_words if nnz else 0

    def charge_silent_round(self) -> None:
        """Account the single silent round of a degenerate (no-op) phase."""
        self.check_round_budget(1)
        self.metrics.rounds = 1

    def charge(
        self, rounds: int, messages: int, total_words: int, max_message_words: int
    ) -> None:
        """Account explicitly computed metrics (non-uniform phases)."""
        self.check_round_budget(rounds)
        metrics = self.metrics
        metrics.rounds = rounds
        metrics.messages = messages
        metrics.total_words = total_words
        metrics.max_message_words = max_message_words


def check_color_range(colors: np.ndarray, palette: int, template: str) -> None:
    """Apply the scalar ``initialize`` palette validation to a color column.

    ``template`` is the exact exception text of the scalar counterpart with
    ``{color}`` / ``{palette}`` placeholders; the first out-of-range node in
    dense order raises, matching the reference scheduler's iteration order.
    """
    bad = (colors < 1) | (colors > palette)
    if bad.any():
        offender = int(colors[np.flatnonzero(bad)[0]])
        raise InvalidParameterError(
            template.format(color=offender, palette=palette)
        )


class VectorizedScheduler(BatchedScheduler):
    """Runs declared color kernels as numpy array programs; falls back otherwise.

    The constructor and the :meth:`run` / :meth:`run_table` signatures are
    those of :class:`~repro.local_model.batched.BatchedScheduler`; only the
    per-phase execution differs.  A phase executes vectorized exactly when it
    sets ``supports_vectorized = True`` and provides ``vector_run``; every
    other phase (including every user-defined phase) runs on the batched path
    and therefore behaves identically to the ``"batched"`` engine.

    Dispatch is resolved **once per pipeline** by :meth:`_compile` (the plan
    is cached on the pipeline object), not per phase execution.  Every phase
    that takes the batched path is recorded: cumulatively on the scheduler
    (:attr:`fallback_phases` / :attr:`fallback_phase_names`) and per run on
    ``RunMetrics.fallback_phase_names`` -- a fully vectorized run reports an
    empty list, which is what the zero-fallback tests and the end-to-end
    benchmark assert.

    :meth:`run_table` is the engine's native entry point: the
    :class:`~repro.local_model.state_table.StateTable` columns feed the
    kernels directly, per-node state dictionaries (and the per-node
    :class:`~repro.local_model.algorithm.LocalView` objects) are materialized
    only if some phase actually falls back.
    """

    def __init__(
        self,
        network,
        globals_extra: Optional[Mapping[str, Any]] = None,
        round_limit_factor: int = 1,
    ) -> None:
        super().__init__(
            network,
            globals_extra=globals_extra,
            round_limit_factor=round_limit_factor,
        )
        #: Number of phase executions that fell back to the batched path
        #: (cumulative over every run of this scheduler instance).
        self.fallback_phases: int = 0
        #: Names of those phases, in execution order.
        self.fallback_phase_names: List[str] = []

    # ------------------------------------------------------------------ #
    # Pipeline compilation (one-time dispatch resolution)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve_vector_run(phase: SynchronousPhase):
        if getattr(phase, "supports_vectorized", False):
            return getattr(phase, "vector_run", None)
        return None

    @classmethod
    def _compile(
        cls, algorithm: Union[SynchronousPhase, PhasePipeline]
    ) -> Tuple[Tuple[SynchronousPhase, Any], ...]:
        """The ``(phase, vector_run-or-None)`` execution plan of ``algorithm``.

        For a :class:`PhasePipeline` the plan is computed once and cached on
        the pipeline object (dispatch does not depend on the scheduler
        instance), so repeated runs of the same pipeline skip re-resolution.
        """
        if isinstance(algorithm, PhasePipeline):
            phases = algorithm.phases
            cached = getattr(algorithm, "_vector_plan", None)
            if cached is not None and cached[0] == phases:
                return cached[1]
            plan = tuple((phase, cls._resolve_vector_run(phase)) for phase in phases)
            algorithm._vector_plan = (phases, plan)
            return plan
        return ((algorithm, cls._resolve_vector_run(algorithm)),)

    def _note_fallback(self, phase: SynchronousPhase, metrics: RunMetrics) -> None:
        self.fallback_phases += 1
        self.fallback_phase_names.append(phase.name)
        metrics.fallback_phase_names.append(phase.name)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _run_vector_phase(
        self,
        phase: SynchronousPhase,
        vector_run,
        states: Optional[List[Dict[str, Any]]] = None,
        table: Optional[StateTable] = None,
        views_provider: Optional[Callable[[], List[LocalView]]] = None,
    ) -> PhaseMetrics:
        fast = self._fast
        phase_metrics = PhaseMetrics(name=phase.name)
        if fast.num_nodes == 0:
            return phase_metrics
        round_limit = self._round_limit_factor * phase.max_rounds(
            fast.num_nodes, fast.max_degree
        )
        context = VectorContext(
            fast,
            states,
            phase_metrics,
            round_limit,
            phase.name,
            table=table,
            views_provider=views_provider,
        )
        self._dispatch_vector_run(phase, vector_run, context)
        return phase_metrics

    def _dispatch_vector_run(
        self, phase: SynchronousPhase, vector_run, context: VectorContext
    ) -> None:
        """Execute one vectorized phase.  The compiled engine's override
        routes the phase to a fused kernel when one is registered."""
        vector_run(context)

    def _execute(
        self,
        algorithm: Union[SynchronousPhase, PhasePipeline],
        states: List[Dict[str, Any]],
        globals_override: Optional[Mapping[str, Any]],
    ) -> RunMetrics:
        """Dict-backed execution (the :meth:`run` path), plan-driven."""
        plan = self._compile(algorithm)
        global_values = self._resolved_globals(globals_override)
        views: Optional[List[LocalView]] = None

        def views_provider() -> List[LocalView]:
            nonlocal views
            if views is None:
                views = self._build_views(global_values)
            return views

        metrics = RunMetrics()
        for phase, vector_run in plan:
            started = time.perf_counter()
            if vector_run is None:
                phase_metrics = self._run_single_phase(
                    phase, states, views_provider()
                )
                self._note_fallback(phase, metrics)
            else:
                phase_metrics = self._run_vector_phase(
                    phase, vector_run, states=states, views_provider=views_provider
                )
            metrics.add_phase(phase_metrics)
            metrics.add_phase_seconds(phase_metrics.name, time.perf_counter() - started)
        return metrics

    def run_table(
        self,
        algorithm: Union[SynchronousPhase, PhasePipeline],
        table: StateTable,
        globals_override: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[StateTable, RunMetrics]:
        """Run with the :class:`StateTable` as the *native* node state.

        Vectorized phases operate directly on the table's columns; a phase
        that falls back materializes the dict view once, runs batched, and
        the columns are re-absorbed before the next vectorized phase.  On a
        fully vectorized pipeline no per-node dictionary (and no per-node
        ``LocalView``) is ever created.
        """
        fast = self._fast
        if table.num_rows != fast.num_nodes:
            raise SimulationError(
                f"state table has {table.num_rows} rows, network has "
                f"{fast.num_nodes} nodes"
            )
        plan = self._compile(algorithm)
        global_values = self._resolved_globals(globals_override)
        views: Optional[List[LocalView]] = None

        def views_provider() -> List[LocalView]:
            nonlocal views
            if views is None:
                views = self._build_views(global_values)
            return views

        metrics = RunMetrics()
        states: Optional[List[Dict[str, Any]]] = None
        for phase, vector_run in plan:
            started = time.perf_counter()
            if vector_run is None:
                if states is None:
                    states = table.to_dicts()
                phase_metrics = self._run_single_phase(
                    phase, states, views_provider()
                )
                self._note_fallback(phase, metrics)
            else:
                if states is not None:
                    table = StateTable.from_dicts(states)
                    states = None
                phase_metrics = self._run_vector_phase(
                    phase, vector_run, table=table, views_provider=views_provider
                )
            metrics.add_phase(phase_metrics)
            metrics.add_phase_seconds(phase_metrics.name, time.perf_counter() - started)
        if states is not None:
            table = StateTable.from_dicts(states)
        return table, metrics


# --------------------------------------------------------------------------- #
# Shared polynomial helpers (used by the Linial / defective-step kernels)
# --------------------------------------------------------------------------- #


def digits_base_q(values: np.ndarray, q: int, num_digits: int) -> np.ndarray:
    """The ``num_digits`` least-significant base-``q`` digits of each value.

    Column ``j`` of the result holds digit ``j`` (the coefficient of ``x^j``),
    matching :func:`repro.primitives.numbers.base_q_digits`.
    """
    digits = np.empty((len(values), num_digits), dtype=np.int64)
    remaining = values.copy()
    for j in range(num_digits):
        digits[:, j] = remaining % q
        remaining //= q
    return digits


def poly_eval_columns(digits: np.ndarray, point: int, q: int) -> np.ndarray:
    """Evaluate every row's polynomial at the scalar ``point`` over ``GF(q)``.

    Horner's rule from the most significant coefficient, exactly like
    :func:`repro.primitives.numbers.poly_eval`.
    """
    values = digits[:, -1].copy()
    for j in range(digits.shape[1] - 2, -1, -1):
        values *= point
        values += digits[:, j]
        values %= q
    return values


def poly_eval_at_points(digits: np.ndarray, points: np.ndarray, q: int) -> np.ndarray:
    """Evaluate every row's polynomial at its own point over ``GF(q)``."""
    values = digits[:, -1].copy()
    for j in range(digits.shape[1] - 2, -1, -1):
        values *= points
        values += digits[:, j]
        values %= q
    return values


def first_free_slot(
    num_rows: int, limit: int, local_rows: np.ndarray, taken_slots: np.ndarray
) -> np.ndarray:
    """Per row, the smallest slot in ``0..limit-1`` not marked taken (-1 if none).

    ``taken_slots[e]`` marks slot ``taken_slots[e]`` of row ``local_rows[e]``
    as occupied; entries outside ``0..limit-1`` must be filtered by the
    caller.  This is the vectorized form of the scalar engines' "first free
    color among the neighbors" scan.
    """
    taken = np.zeros(num_rows * limit, dtype=bool)
    taken[local_rows * limit + taken_slots] = True
    free = ~taken.reshape(num_rows, limit)
    slots = np.argmax(free, axis=1)
    slots[~free.any(axis=1)] = -1
    return slots
