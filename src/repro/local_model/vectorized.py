"""The vectorized color-phase engine.

The batched engine (:mod:`repro.local_model.batched`) removed the per-message
bookkeeping but still executes one Python callback per node per round.  For
the paper's *pure-color* phases -- Linial's set-system recoloring, the
Kuhn-Wattenhofer block reduction, the defective polynomial steps, the
``psi``-selection loop -- a round's messages are just the nodes' current
colors, so the entire round is expressible as array arithmetic over the CSR
adjacency of a :class:`~repro.local_model.fast_network.FastNetwork`.

:class:`VectorizedScheduler` runs exactly those phases as numpy kernels and
transparently falls back to :class:`~repro.local_model.batched.BatchedScheduler`
for any phase that does not declare one -- a pipeline may freely mix both
kinds.  A phase opts in by setting ``supports_vectorized = True`` and
implementing ``vector_run(ctx)``, where ``ctx`` is the :class:`VectorContext`
defined here.  The contract mirrors the scalar callbacks bit for bit:

* the final per-node state dictionaries must be *identical* to what the
  reference scheduler produces (including internal scratch keys);
* the phase's :class:`~repro.local_model.metrics.PhaseMetrics` must be
  identical -- rounds, message count, total words, maximum message size.

``tests/test_engine_equivalence.py`` and the golden fixtures enforce both,
for all three engines, across the whole algorithm zoo.  The metric side is
made hard to get wrong by the charging helpers on :class:`VectorContext`:
a uniform broadcast phase (every live node announces one scalar per round,
all nodes halt together) is fully described by its round count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError, RoundLimitExceeded
from repro.local_model.batched import BatchedScheduler
from repro.local_model.fast_network import FastNetwork
from repro.local_model.metrics import PhaseMetrics


class VectorContext:
    """Everything a ``vector_run`` kernel may touch.

    Attributes
    ----------
    fast:
        The CSR view the phase runs on.
    states:
        The per-node state dictionaries in dense-index order.  Kernels read
        their input column(s) through :meth:`column` and write results back
        through :meth:`write_column` / :meth:`write_value`; direct access is
        allowed for state values that are not scalars (lists, sets).
    metrics:
        The phase's metrics object, filled in through the charging helpers.
    round_limit:
        The phase's round budget (``round_limit_factor * max_rounds``);
        :meth:`check_round_budget` enforces it with the scheduler's exact
        exception.
    """

    def __init__(
        self,
        fast: FastNetwork,
        states: List[Dict[str, Any]],
        metrics: PhaseMetrics,
        round_limit: int,
        phase_name: str,
    ) -> None:
        self.fast = fast
        self.states = states
        self.metrics = metrics
        self.round_limit = round_limit
        self.phase_name = phase_name

    # ------------------------------------------------------------------ #
    # State columns
    # ------------------------------------------------------------------ #

    def column(self, key: str) -> np.ndarray:
        """Gather ``state[key]`` over all nodes into an ``int64`` array."""
        return np.fromiter(
            (state[key] for state in self.states),
            dtype=np.int64,
            count=len(self.states),
        )

    def unique_ids(self) -> np.ndarray:
        """The nodes' distinct identity numbers (``int64``, dense order)."""
        return self.fast.unique_ids_np

    def write_column(self, key: str, values: np.ndarray) -> None:
        """Scatter ``values`` into ``state[key]`` as plain Python ints."""
        for state, value in zip(self.states, values.tolist()):
            state[key] = value

    def write_value(self, key: str, value: Any) -> None:
        """Write the same (immutable) value into ``state[key]`` everywhere."""
        for state in self.states:
            state[key] = value

    # ------------------------------------------------------------------ #
    # Adjacency gathers
    # ------------------------------------------------------------------ #

    def gather_neighbors(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The concatenated neighbor lists of ``nodes``.

        Returns ``(local_rows, neighbors)``: CSR entry ``e`` of the result is
        the edge from ``nodes[local_rows[e]]`` to dense index
        ``neighbors[e]``.  Neighbor order within a node is the deterministic
        network order, matching the scalar engines' inbox iteration order.
        """
        fast = self.fast
        lengths = fast.degrees_np[nodes]
        total = int(lengths.sum())
        local_rows = np.repeat(np.arange(len(nodes), dtype=np.int64), lengths)
        if total == 0:
            return local_rows, np.zeros(0, dtype=np.int64)
        starts = np.repeat(fast.indptr_np[nodes], lengths)
        offsets = np.zeros(len(nodes), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
        return local_rows, fast.indices_np[starts + within]

    # ------------------------------------------------------------------ #
    # Metric charging
    # ------------------------------------------------------------------ #

    def check_round_budget(self, rounds: int) -> None:
        """Raise exactly like the scalar engines when ``rounds`` exceeds the budget."""
        if rounds > self.round_limit:
            raise RoundLimitExceeded(
                f"phase {self.phase_name!r} exceeded its round budget of "
                f"{self.round_limit}"
            )

    def charge_uniform_broadcast(self, rounds: int, payload_words: int = 1) -> None:
        """Account ``rounds`` rounds in which *every* node broadcasts one payload.

        This is the exact cost the scalar engines measure for a phase in
        which all nodes stay live until a common final round and broadcast a
        ``payload_words``-word payload each round: ``degree`` messages per
        node per round.
        """
        self.check_round_budget(rounds)
        nnz = len(self.fast.indices)
        metrics = self.metrics
        metrics.rounds = rounds
        metrics.messages = rounds * nnz
        metrics.total_words = rounds * nnz * payload_words
        metrics.max_message_words = payload_words if nnz else 0

    def charge_silent_round(self) -> None:
        """Account the single silent round of a degenerate (no-op) phase."""
        self.check_round_budget(1)
        self.metrics.rounds = 1

    def charge(
        self, rounds: int, messages: int, total_words: int, max_message_words: int
    ) -> None:
        """Account explicitly computed metrics (non-uniform phases)."""
        self.check_round_budget(rounds)
        metrics = self.metrics
        metrics.rounds = rounds
        metrics.messages = messages
        metrics.total_words = total_words
        metrics.max_message_words = max_message_words


def check_color_range(colors: np.ndarray, palette: int, template: str) -> None:
    """Apply the scalar ``initialize`` palette validation to a color column.

    ``template`` is the exact exception text of the scalar counterpart with
    ``{color}`` / ``{palette}`` placeholders; the first out-of-range node in
    dense order raises, matching the reference scheduler's iteration order.
    """
    bad = (colors < 1) | (colors > palette)
    if bad.any():
        offender = int(colors[np.flatnonzero(bad)[0]])
        raise InvalidParameterError(
            template.format(color=offender, palette=palette)
        )


class VectorizedScheduler(BatchedScheduler):
    """Runs declared color kernels as numpy array programs; falls back otherwise.

    Constructor and :meth:`run` are inherited unchanged from
    :class:`~repro.local_model.batched.BatchedScheduler`; only the per-phase
    execution differs.  A phase executes vectorized exactly when it sets
    ``supports_vectorized = True`` and provides ``vector_run``; every other
    phase (including every user-defined phase) runs on the batched path and
    therefore behaves identically to the ``"batched"`` engine.
    """

    def _run_single_phase(self, phase, states, views) -> PhaseMetrics:
        vector_run = getattr(phase, "vector_run", None)
        if vector_run is None or not getattr(phase, "supports_vectorized", False):
            return super()._run_single_phase(phase, states, views)

        fast = self._fast
        phase_metrics = PhaseMetrics(name=phase.name)
        if fast.num_nodes == 0:
            return phase_metrics
        round_limit = self._round_limit_factor * phase.max_rounds(
            fast.num_nodes, fast.max_degree
        )
        context = VectorContext(
            fast, states, phase_metrics, round_limit, phase.name
        )
        vector_run(context)
        return phase_metrics


# --------------------------------------------------------------------------- #
# Shared polynomial helpers (used by the Linial / defective-step kernels)
# --------------------------------------------------------------------------- #


def digits_base_q(values: np.ndarray, q: int, num_digits: int) -> np.ndarray:
    """The ``num_digits`` least-significant base-``q`` digits of each value.

    Column ``j`` of the result holds digit ``j`` (the coefficient of ``x^j``),
    matching :func:`repro.primitives.numbers.base_q_digits`.
    """
    digits = np.empty((len(values), num_digits), dtype=np.int64)
    remaining = values.copy()
    for j in range(num_digits):
        digits[:, j] = remaining % q
        remaining //= q
    return digits


def poly_eval_columns(digits: np.ndarray, point: int, q: int) -> np.ndarray:
    """Evaluate every row's polynomial at the scalar ``point`` over ``GF(q)``.

    Horner's rule from the most significant coefficient, exactly like
    :func:`repro.primitives.numbers.poly_eval`.
    """
    values = digits[:, -1].copy()
    for j in range(digits.shape[1] - 2, -1, -1):
        values *= point
        values += digits[:, j]
        values %= q
    return values


def poly_eval_at_points(digits: np.ndarray, points: np.ndarray, q: int) -> np.ndarray:
    """Evaluate every row's polynomial at its own point over ``GF(q)``."""
    values = digits[:, -1].copy()
    for j in range(digits.shape[1] - 2, -1, -1):
        values *= points
        values += digits[:, j]
        values %= q
    return values


def first_free_slot(
    num_rows: int, limit: int, local_rows: np.ndarray, taken_slots: np.ndarray
) -> np.ndarray:
    """Per row, the smallest slot in ``0..limit-1`` not marked taken (-1 if none).

    ``taken_slots[e]`` marks slot ``taken_slots[e]`` of row ``local_rows[e]``
    as occupied; entries outside ``0..limit-1`` must be filtered by the
    caller.  This is the vectorized form of the scalar engines' "first free
    color among the neighbors" scan.
    """
    taken = np.zeros(num_rows * limit, dtype=bool)
    taken[local_rows * limit + taken_slots] = True
    free = ~taken.reshape(num_rows, limit)
    slots = np.argmax(free, axis=1)
    slots[~free.any(axis=1)] = -1
    return slots
