"""Round, message and bandwidth accounting.

The quantities the paper's theorems bound are (a) the number of communication
rounds and (b) the size of the messages, measured in ``O(log n)``-bit words.
:class:`RunMetrics` accumulates both across the phases of an algorithm, and
records a per-phase breakdown that the benchmark harnesses report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class PhaseMetrics:
    """Metrics of a single phase execution."""

    name: str
    rounds: int = 0
    messages: int = 0
    total_words: int = 0
    max_message_words: int = 0

    def record_message(self, size_words: int) -> None:
        """Charge one message of ``size_words`` words to this phase."""
        self.messages += 1
        self.total_words += size_words
        if size_words > self.max_message_words:
            self.max_message_words = size_words


@dataclass
class RunMetrics:
    """Aggregated metrics of a full algorithm execution.

    Attributes
    ----------
    rounds:
        Total number of communication rounds across all phases.
    messages:
        Total number of messages sent.
    total_words:
        Total bandwidth, in ``O(log n)``-bit words.
    max_message_words:
        The largest single message, in words.  An algorithm "uses messages of
        size ``O(log n)``" exactly when this stays bounded by a constant
        independent of ``Delta``.
    phases:
        Per-phase breakdown, in execution order.
    fallback_phase_names:
        Names of the phases that the vectorized engine executed on its
        batched fallback path, in execution order (empty for the other
        engines, and for fully vectorized runs).  Purely informational: it
        is excluded from equality and from the engine-equivalence contract,
        which compares :meth:`summary` and the per-phase breakdown.
    compiled_fallback_phase_names:
        Names of the phases the compiled engine dispatched back to the plain
        numpy ``vector_run`` because no kernel backend was available, in
        execution order (empty for the other engines).  Like
        ``fallback_phase_names`` it is informational only and excluded from
        equality.
    phase_seconds:
        Wall-clock seconds per phase name, accumulated across executions of
        the same phase (recursion levels re-run phases under one name).
        Populated by every engine; excluded from equality because timings
        are machine- and run-dependent.
    degraded_engine_names:
        Engines abandoned by the resilience layer's degradation chain before
        this run succeeded, fastest first (see
        :func:`repro.resilience.run_with_degradation`); empty for runs that
        executed on their requested engine.  Informational and excluded from
        equality, like the fallback accounting -- the engines are
        bit-identical, so a degraded run's *results* are indistinguishable.
    """

    rounds: int = 0
    messages: int = 0
    total_words: int = 0
    max_message_words: int = 0
    phases: List[PhaseMetrics] = field(default_factory=list)
    fallback_phase_names: List[str] = field(default_factory=list, compare=False)
    compiled_fallback_phase_names: List[str] = field(
        default_factory=list, compare=False
    )
    phase_seconds: Dict[str, float] = field(default_factory=dict, compare=False)
    degraded_engine_names: List[str] = field(default_factory=list, compare=False)

    def add_phase(self, phase: PhaseMetrics) -> None:
        """Fold one phase's metrics into the aggregate."""
        self.phases.append(phase)
        self.rounds += phase.rounds
        self.messages += phase.messages
        self.total_words += phase.total_words
        self.max_message_words = max(self.max_message_words, phase.max_message_words)

    def add_phase_seconds(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time for one execution of phase ``name``."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def merge(self, other: "RunMetrics") -> None:
        """Fold another run's metrics (all of its phases) into this one."""
        for phase in other.phases:
            self.add_phase(phase)
        self.fallback_phase_names.extend(other.fallback_phase_names)
        self.compiled_fallback_phase_names.extend(other.compiled_fallback_phase_names)
        self.degraded_engine_names.extend(other.degraded_engine_names)
        for name, seconds in other.phase_seconds.items():
            self.add_phase_seconds(name, seconds)
        if not other.phases:
            # The other run may carry only aggregate values (e.g. analytic
            # adjustments); account them as an anonymous phase.
            if other.rounds or other.messages:
                self.add_phase(
                    PhaseMetrics(
                        name="(aggregate)",
                        rounds=other.rounds,
                        messages=other.messages,
                        total_words=other.total_words,
                        max_message_words=other.max_message_words,
                    )
                )

    def add_rounds(self, rounds: int, name: str = "(adjustment)") -> None:
        """Add extra rounds without messages (e.g. simulation overhead)."""
        self.add_phase(PhaseMetrics(name=name, rounds=rounds))

    def summary(self) -> Tuple[int, int, int, int]:
        """Return ``(rounds, messages, total_words, max_message_words)``."""
        return (self.rounds, self.messages, self.total_words, self.max_message_words)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunMetrics(rounds={self.rounds}, messages={self.messages}, "
            f"total_words={self.total_words}, max_message_words={self.max_message_words})"
        )
