"""A flat, index-based view of a :class:`~repro.local_model.network.Network`.

The reference :class:`~repro.local_model.scheduler.Scheduler` addresses nodes
by their (hashable) identifiers and re-validates every message with an
``O(degree)`` adjacency scan.  For large networks that bookkeeping dominates
the simulation cost, so the batched engine compiles the network once into a
:class:`FastNetwork`: nodes become dense indices ``0..n-1``, the adjacency is
stored CSR-style (one flat ``indices`` array plus ``indptr`` offsets), and
per-node neighbor-identifier sets give ``O(1)`` message validation.  The
compiled form is cached on the network (networks are immutable once
constructed), so repeated runs -- e.g. the per-level invocations of Procedure
Legal-Color -- pay the compilation cost only once.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Tuple

from repro.local_model.network import Network


class FastNetwork:
    """CSR-style adjacency compiled from a :class:`Network`.

    Attributes
    ----------
    order:
        Node identifiers in the network's deterministic order; position in
        this tuple is the node's dense index.
    index_of:
        Mapping from node identifier to dense index.
    unique_ids:
        ``unique_ids[i]`` is the distinct identity number of node ``i``.
    indptr, indices:
        The CSR arrays: the neighbors of node ``i`` are the dense indices
        ``indices[indptr[i]:indptr[i + 1]]``.
    neighbor_ids:
        ``neighbor_ids[i]`` is the tuple of neighbor *identifiers* of node
        ``i`` in deterministic order (shared with the owning network, so
        :class:`~repro.local_model.algorithm.LocalView` construction is free).
    neighbor_id_sets:
        ``neighbor_id_sets[i]`` is a frozenset of the same identifiers, used
        for ``O(1)`` message validation.
    degrees:
        ``degrees[i]`` is the degree of node ``i``.
    """

    __slots__ = (
        "network",
        "order",
        "index_of",
        "unique_ids",
        "indptr",
        "indices",
        "neighbor_ids",
        "neighbor_id_sets",
        "degrees",
        "num_nodes",
        "max_degree",
    )

    def __init__(self, network: Network) -> None:
        self.network = network
        order: Tuple[Hashable, ...] = network.nodes()
        self.order = order
        self.num_nodes = len(order)
        self.max_degree = network.max_degree
        index_of: Dict[Hashable, int] = {node: i for i, node in enumerate(order)}
        self.index_of = index_of
        self.unique_ids = array("q", (network.unique_id(node) for node in order))

        indptr = array("q", [0])
        indices = array("q")
        neighbor_ids = []
        neighbor_id_sets = []
        degrees = array("q")
        offset = 0
        for node in order:
            neighbors = network.neighbors(node)
            neighbor_ids.append(neighbors)
            neighbor_id_sets.append(frozenset(neighbors))
            degrees.append(len(neighbors))
            indices.extend(index_of[neighbor] for neighbor in neighbors)
            offset += len(neighbors)
            indptr.append(offset)
        self.indptr = indptr
        self.indices = indices
        self.neighbor_ids = tuple(neighbor_ids)
        self.neighbor_id_sets = tuple(neighbor_id_sets)
        self.degrees = degrees

    def neighbor_indices(self, i: int) -> array:
        """Dense neighbor indices of node ``i`` (a zero-copy CSR slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FastNetwork(n={self.num_nodes}, nnz={len(self.indices)})"


def fast_view(network: Network) -> FastNetwork:
    """The cached :class:`FastNetwork` of ``network`` (compiled on first use).

    Networks are immutable once constructed, so the compiled view is stored on
    the network object and shared by every scheduler that runs on it.
    """
    cached = getattr(network, "_fast_view_cache", None)
    if cached is None:
        cached = FastNetwork(network)
        object.__setattr__(network, "_fast_view_cache", cached)
    return cached
