"""A flat, index-based view of a :class:`~repro.local_model.network.Network`.

The reference :class:`~repro.local_model.scheduler.Scheduler` addresses nodes
by their (hashable) identifiers and re-validates every message with an
``O(degree)`` adjacency scan.  For large networks that bookkeeping dominates
the simulation cost, so the batched engine compiles the network once into a
:class:`FastNetwork`: nodes become dense indices ``0..n-1``, the adjacency is
stored CSR-style (one flat ``indices`` array plus ``indptr`` offsets), and
per-node neighbor-identifier sets give ``O(1)`` message validation.  The
compiled form is cached on the network (networks are immutable once
constructed), so repeated runs -- e.g. the per-level invocations of Procedure
Legal-Color -- pay the compilation cost only once.

Three further capabilities sit on top of the CSR representation:

* **numpy mirrors** (:attr:`FastNetwork.indptr_np`, :attr:`~FastNetwork.indices_np`,
  :attr:`~FastNetwork.rows_np`, ...) -- zero-copy ``int64`` views of the CSR
  arrays, the substrate of the vectorized execution engine
  (:mod:`repro.local_model.vectorized`);
* **CSR masking** (:meth:`FastNetwork.filtered` /
  :meth:`~FastNetwork.filtered_by_labels`) -- derive the sub-network of a
  recursion level directly at the array level, without rebuilding a
  :class:`Network` (no re-sorting, no set-based deduplication).  The
  reference engine can still audit such a derived view through
  :meth:`FastNetwork.to_network`, which materializes the identical
  :class:`Network` on demand;
* **array construction** (:meth:`FastNetwork.from_edge_array` /
  :meth:`FastNetwork.from_csr`) -- build a network straight from endpoint
  arrays (or ready-made CSR arrays) without ever materializing a legacy
  :class:`Network`: the vectorized workload generators
  (:mod:`repro.graphs.generators`, ``backend="fast"``) enter here, node
  identifiers stay behind a lazy provider exactly like the line-graph views
  of :mod:`repro.local_model.line_csr`, and :meth:`to_network` remains the
  on-demand audit path.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.local_model.network import Network


def _int64_view(values: array) -> np.ndarray:
    """A zero-copy ``int64`` numpy view of an ``array('q')``."""
    if len(values) == 0:
        return np.zeros(0, dtype=np.int64)
    return np.frombuffer(values, dtype=np.int64)


def _int64_array(values: np.ndarray) -> array:
    """An ``array('q')`` holding the same integers as ``values``.

    The byte-cast memoryview keeps this a single copy (``tobytes`` would
    materialize an intermediate ``bytes`` object -- a second full copy on
    every derived-view construction).
    """
    out = array("q")
    out.frombytes(memoryview(np.ascontiguousarray(values, dtype=np.int64)).cast("B"))
    return out


class FastNetwork:
    """CSR-style adjacency compiled from a :class:`Network`.

    Attributes
    ----------
    network:
        The :class:`Network` this view was compiled from, or ``None`` for a
        derived (filtered) view that has not been materialized yet (see
        :meth:`to_network`).
    order:
        Node identifiers in the network's deterministic order; position in
        this tuple is the node's dense index.
    index_of:
        Mapping from node identifier to dense index.
    unique_ids:
        ``unique_ids[i]`` is the distinct identity number of node ``i``.
    indptr, indices:
        The CSR arrays: the neighbors of node ``i`` are the dense indices
        ``indices[indptr[i]:indptr[i + 1]]``.
    neighbor_ids:
        ``neighbor_ids[i]`` is the tuple of neighbor *identifiers* of node
        ``i`` in deterministic order (shared with the owning network, so
        :class:`~repro.local_model.algorithm.LocalView` construction is free).
    neighbor_id_sets:
        ``neighbor_id_sets[i]`` is a frozenset of the same identifiers, used
        for ``O(1)`` message validation.
    degrees:
        ``degrees[i]`` is the degree of node ``i``.
    """

    __slots__ = (
        "network",
        "_order",
        "_index_of",
        "_order_provider",
        "unique_ids",
        "indptr",
        "indices",
        "_neighbor_ids",
        "_neighbor_id_sets",
        "degrees",
        "num_nodes",
        "max_degree",
        "line_meta",
        "_np_cache",
    )

    def __init__(self, network: Optional[Network]) -> None:
        self._np_cache: Dict[str, np.ndarray] = {}
        #: Dense incidence encoding for line-graph views (see
        #: :mod:`repro.local_model.line_csr`); ``None`` on ordinary networks.
        self.line_meta = None
        self._order_provider = None
        if network is None:
            return  # Fields are filled in by _masked / build_line_graph_fast.
        self.network = network
        order: Tuple[Hashable, ...] = network.nodes()
        self._order = order
        self.num_nodes = len(order)
        self.max_degree = network.max_degree
        index_of: Dict[Hashable, int] = {node: i for i, node in enumerate(order)}
        self._index_of = index_of
        self.unique_ids = array("q", (network.unique_id(node) for node in order))

        indptr = array("q", [0])
        indices = array("q")
        neighbor_ids = []
        neighbor_id_sets = []
        degrees = array("q")
        offset = 0
        for node in order:
            neighbors = network.neighbors(node)
            neighbor_ids.append(neighbors)
            neighbor_id_sets.append(frozenset(neighbors))
            degrees.append(len(neighbors))
            indices.extend(index_of[neighbor] for neighbor in neighbors)
            offset += len(neighbors)
            indptr.append(offset)
        self.indptr = indptr
        self.indices = indices
        self._neighbor_ids = tuple(neighbor_ids)
        self._neighbor_id_sets = tuple(neighbor_id_sets)
        self.degrees = degrees

    # ------------------------------------------------------------------ #
    # Array constructors (no legacy Network involved)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edge_array(
        cls,
        u,
        v,
        *,
        num_nodes: int,
        unique_ids=None,
        order=None,
    ) -> "FastNetwork":
        """Build a :class:`FastNetwork` from endpoint arrays, Network-free.

        Parameters
        ----------
        u, v:
            Integer arrays of equal length holding the dense endpoint indices
            of the undirected edges (each edge listed once, in either
            endpoint order).  Duplicate edges are deduplicated silently --
            the same semantics as :class:`Network`'s set-based adjacency --
            and self-loops are rejected.
        num_nodes:
            Number of nodes ``n``; indices must lie in ``0..n-1``.  Nodes
            that appear in no edge become isolated vertices.
        unique_ids:
            Optional ``int64`` array of distinct identity numbers, one per
            dense index.  Must be *strictly increasing*: dense order is
            unique-id order everywhere in this package (the line-graph
            builder and the canonical-edge enumeration rely on it), exactly
            as a :class:`Network`-compiled view guarantees it.  Defaults to
            ``1..n``.
        order:
            Node identifiers -- a sequence, or a zero-argument callable
            returning one (the lazy-provider protocol of the line-graph
            views: the ``n`` Python objects are interned on first use at the
            API boundary, or never).  Defaults to the dense indices
            themselves.

        The CSR arrays are assembled by symmetrizing, lexsorting and
        deduplicating the endpoint arrays; since dense order is unique-id
        order, the resulting neighbor order is exactly the unique-id order a
        legacy :class:`Network` would produce, and :meth:`to_network`
        materializes the identical network on demand.
        """
        n = int(num_nodes)
        if n < 0:
            raise InvalidParameterError("num_nodes must be non-negative")
        u = np.ascontiguousarray(u, dtype=np.int64).ravel()
        v = np.ascontiguousarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise InvalidParameterError(
                f"endpoint arrays disagree in length: {len(u)} vs {len(v)}"
            )
        if len(u) and (
            u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n
        ):
            raise InvalidParameterError(
                f"edge endpoints must be dense indices in 0..{n - 1}"
            )
        loops = u == v
        if loops.any():
            offender = int(u[int(np.argmax(loops))])
            if order is None:
                node = offender
            else:
                node = tuple(order() if callable(order) else order)[offender]
            raise InvalidParameterError(
                f"self-loop at node {node!r} is not allowed in the LOCAL model"
            )

        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        if len(rows):
            by_row_then_col = np.lexsort((cols, rows))
            rows = rows[by_row_then_col]
            cols = cols[by_row_then_col]
            fresh = np.empty(len(rows), dtype=bool)
            fresh[0] = True
            fresh[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            rows, cols = rows[fresh], cols[fresh]
        degrees = np.bincount(rows, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        return cls._from_parts(indptr, cols, degrees, n, unique_ids, order)

    @classmethod
    def from_csr(
        cls,
        indptr,
        indices,
        *,
        unique_ids=None,
        order=None,
        check: bool = True,
    ) -> "FastNetwork":
        """Build a :class:`FastNetwork` from ready-made CSR arrays.

        ``indptr``/``indices`` follow the usual convention (neighbors of node
        ``i`` are ``indices[indptr[i]:indptr[i + 1]]``).  With ``check=True``
        (the default) the arrays are validated vectorially: monotone
        ``indptr``, in-range indices, per-row strictly ascending neighbor
        lists (which is the unique-id neighbor order, and excludes duplicate
        edges), no self-loops, and a symmetric adjacency.  Pass
        ``check=False`` only for arrays produced by trusted array code.
        ``unique_ids`` / ``order`` behave as in :meth:`from_edge_array`.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64).ravel()
        indices = np.ascontiguousarray(indices, dtype=np.int64).ravel()
        if len(indptr) == 0 or indptr[0] != 0:
            raise InvalidParameterError("indptr must start with 0")
        n = len(indptr) - 1
        degrees = np.diff(indptr)
        if check:
            if (degrees < 0).any():
                raise InvalidParameterError("indptr must be non-decreasing")
            if int(indptr[-1]) != len(indices):
                raise InvalidParameterError(
                    f"indptr ends at {int(indptr[-1])} but there are "
                    f"{len(indices)} CSR entries"
                )
            if len(indices) and (indices.min() < 0 or indices.max() >= n):
                raise InvalidParameterError(
                    f"CSR indices must be dense indices in 0..{n - 1}"
                )
            rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
            if (rows == indices).any():
                raise InvalidParameterError(
                    "self-loops are not allowed in the LOCAL model"
                )
            interior = np.ones(len(indices), dtype=bool)
            starts = indptr[1:-1]
            interior[starts[starts < len(indices)]] = False  # row starts
            if len(indices) and not (np.diff(indices) > 0)[interior[1:]].all():
                raise InvalidParameterError(
                    "neighbor lists must be strictly increasing per row "
                    "(dense order is unique-id order)"
                )
            forward = np.sort(rows * n + indices)
            backward = np.sort(indices * n + rows)
            if not np.array_equal(forward, backward):
                raise InvalidParameterError("adjacency must be symmetric")
        return cls._from_parts(indptr, indices, degrees, n, unique_ids, order)

    @classmethod
    def _from_parts(
        cls, indptr, indices, degrees, num_nodes, unique_ids, order
    ) -> "FastNetwork":
        """Finalize an array-built view (shared by the array constructors)."""
        if unique_ids is None:
            unique_ids = np.arange(1, num_nodes + 1, dtype=np.int64)
        else:
            unique_ids = np.ascontiguousarray(unique_ids, dtype=np.int64).ravel()
            if unique_ids.shape != (num_nodes,):
                raise InvalidParameterError(
                    f"unique_ids must have one entry per node ({num_nodes}), "
                    f"got shape {unique_ids.shape}"
                )
            if len(unique_ids) > 1 and not (np.diff(unique_ids) > 0).all():
                raise InvalidParameterError(
                    "unique_ids must be strictly increasing along the dense "
                    "index (dense order is unique-id order)"
                )
        built = cls(None)
        built.network = None
        built.num_nodes = int(num_nodes)
        built.unique_ids = _int64_array(unique_ids)
        built.indptr = _int64_array(np.asarray(indptr, dtype=np.int64))
        built.indices = _int64_array(np.asarray(indices, dtype=np.int64))
        built.degrees = _int64_array(np.asarray(degrees, dtype=np.int64))
        built.max_degree = int(np.max(degrees)) if num_nodes else 0
        built._neighbor_ids = None
        built._neighbor_id_sets = None
        built._index_of = None  # interned lazily from `order` on first use
        if order is None:
            built._order = None
            built._order_provider = lambda: range(built.num_nodes)
        elif callable(order):
            built._order = None
            built._order_provider = order
        else:
            order = tuple(order)
            if len(order) != num_nodes:
                raise InvalidParameterError(
                    f"order must list all {num_nodes} node identifiers, "
                    f"got {len(order)}"
                )
            built._order = order
        return built

    # ------------------------------------------------------------------ #
    # Basic accessors (duck-typed with Network where algorithms need it)
    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (half the number of CSR entries)."""
        return len(self.indices) // 2

    @property
    def order(self) -> Tuple[Hashable, ...]:
        """Node identifiers in deterministic order (dense index = position).

        Line-graph views built by
        :func:`repro.local_model.line_csr.build_line_graph_fast` defer the
        edge-tuple identifiers behind a provider: the fully vectorized
        execution path addresses nodes by dense index only, so the ``|E|``
        Python tuples are interned exactly once, at the API boundary (result
        extraction, reference-engine audits), or never.
        """
        if self._order is None:
            self._order = tuple(self._order_provider())
        return self._order

    @property
    def index_of(self) -> Dict[Hashable, int]:
        """Mapping from node identifier to dense index (built lazily)."""
        if self._index_of is None:
            self._index_of = {node: i for i, node in enumerate(self.order)}
        return self._index_of

    def nodes(self) -> Tuple[Hashable, ...]:
        """All node identifiers in deterministic order (same as ``order``)."""
        return self.order

    def unique_id(self, node: Hashable) -> int:
        """The distinct identity number of ``node``."""
        return self.unique_ids[self.index_of[node]]

    def neighbor_indices(self, i: int) -> array:
        """Dense neighbor indices of node ``i`` (a zero-copy CSR slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    @property
    def neighbor_ids(self) -> Tuple[Tuple[Hashable, ...], ...]:
        """Per-node neighbor *identifier* tuples (lazy on derived views).

        Views compiled from a :class:`Network` share the network's tuples;
        CSR-masked views materialize them from the CSR arrays on first use --
        the fully vectorized execution path never needs them, so deriving a
        recursion level's sub-view stays free of per-node Python work.
        """
        if self._neighbor_ids is None:
            order, indptr, indices = self.order, self.indptr, self.indices
            self._neighbor_ids = tuple(
                tuple(order[j] for j in indices[indptr[i] : indptr[i + 1]])
                for i in range(self.num_nodes)
            )
        return self._neighbor_ids

    @property
    def neighbor_id_sets(self) -> Tuple[frozenset, ...]:
        """Per-node neighbor-identifier frozensets (lazy on derived views)."""
        if self._neighbor_id_sets is None:
            self._neighbor_id_sets = tuple(
                frozenset(neighbors) for neighbors in self.neighbor_ids
            )
        return self._neighbor_id_sets

    # ------------------------------------------------------------------ #
    # Numpy mirrors (lazy, cached; the substrate of the vectorized engine)
    # ------------------------------------------------------------------ #

    @property
    def indptr_np(self) -> np.ndarray:
        """``indptr`` as an ``int64`` numpy array (zero-copy, cached)."""
        cached = self._np_cache.get("indptr")
        if cached is None:
            cached = self._np_cache["indptr"] = _int64_view(self.indptr)
        return cached

    @property
    def indices_np(self) -> np.ndarray:
        """``indices`` as an ``int64`` numpy array (zero-copy, cached)."""
        cached = self._np_cache.get("indices")
        if cached is None:
            cached = self._np_cache["indices"] = _int64_view(self.indices)
        return cached

    @property
    def degrees_np(self) -> np.ndarray:
        """``degrees`` as an ``int64`` numpy array (zero-copy, cached)."""
        cached = self._np_cache.get("degrees")
        if cached is None:
            cached = self._np_cache["degrees"] = _int64_view(self.degrees)
        return cached

    @property
    def unique_ids_np(self) -> np.ndarray:
        """``unique_ids`` as an ``int64`` numpy array (zero-copy, cached)."""
        cached = self._np_cache.get("unique_ids")
        if cached is None:
            cached = self._np_cache["unique_ids"] = _int64_view(self.unique_ids)
        return cached

    @property
    def rows_np(self) -> np.ndarray:
        """``rows_np[e]`` is the *source* node of CSR entry ``e`` (cached).

        Together with ``indices_np`` this lists every directed edge
        ``rows_np[e] -> indices_np[e]``; each undirected edge appears twice.
        """
        cached = self._np_cache.get("rows")
        if cached is None:
            cached = self._np_cache["rows"] = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), self.degrees_np
            )
        return cached

    @property
    def edge_keys_np(self) -> np.ndarray:
        """``rows_np * num_nodes + indices_np``: directed-entry keys (cached).

        The keys are globally ascending (rows ascend, and neighbor lists
        ascend within a row), so presence tests and delta merges are plain
        ``searchsorted`` work.  :meth:`with_edge_updates` hands the merged
        key array straight to the derived view's cache, so a chain of
        patches never recomputes it from ``rows_np``.
        """
        cached = self._np_cache.get("edge_keys")
        if cached is None:
            cached = self._np_cache["edge_keys"] = (
                self.rows_np * self.num_nodes + self.indices_np
            )
        return cached

    # ------------------------------------------------------------------ #
    # CSR masking: derived sub-networks without Network rebuilds
    # ------------------------------------------------------------------ #

    def filtered(
        self,
        edge_mask: Optional[np.ndarray] = None,
        node_mask: Optional[np.ndarray] = None,
    ) -> "FastNetwork":
        """A spanning sub-view keeping only the unmasked edges.

        Parameters
        ----------
        edge_mask:
            Boolean array over the CSR entries (length ``len(indices)``);
            entry ``e`` keeps the directed edge ``rows_np[e] -> indices_np[e]``.
            The mask must be symmetric (both directions of an undirected edge
            kept or dropped together), which every equality-based mask is.
        node_mask:
            Boolean array over the nodes (length ``num_nodes``); an edge
            survives only if *both* endpoints are unmasked.  All nodes are
            preserved in the result (masked-out nodes become isolated),
            matching :meth:`Network.filtered_by_edge`'s spanning-subgraph
            semantics, which is what the "run all subgraphs of a recursion
            level in parallel" execution requires.

        Returns
        -------
        FastNetwork
            A derived view sharing ``order`` / ``index_of`` / ``unique_ids``
            with this one.  Its ``network`` attribute is ``None`` until
            :meth:`to_network` materializes it.
        """
        if edge_mask is None and node_mask is None:
            raise InvalidParameterError("filtered() requires edge_mask or node_mask")
        keep = None
        if edge_mask is not None:
            keep = np.asarray(edge_mask, dtype=bool)
            if keep.shape != (len(self.indices),):
                raise InvalidParameterError(
                    f"edge_mask must have one entry per CSR slot "
                    f"({len(self.indices)}), got shape {keep.shape}"
                )
        if node_mask is not None:
            nodes_kept = np.asarray(node_mask, dtype=bool)
            if nodes_kept.shape != (self.num_nodes,):
                raise InvalidParameterError(
                    f"node_mask must have one entry per node "
                    f"({self.num_nodes}), got shape {nodes_kept.shape}"
                )
            endpoint_keep = nodes_kept[self.rows_np] & nodes_kept[self.indices_np]
            keep = endpoint_keep if keep is None else (keep & endpoint_keep)
        return self._masked(keep)

    def filtered_by_labels(self, labels: np.ndarray) -> "FastNetwork":
        """Keep exactly the edges whose endpoints carry equal labels.

        This is the CSR form of the Legal-Color recursion step: vertices with
        equal recursion paths stay connected, edges crossing between classes
        are dropped.  ``labels`` is any integer array of length ``num_nodes``.
        """
        labels = np.asarray(labels)
        if labels.shape != (self.num_nodes,):
            raise InvalidParameterError(
                f"labels must have one entry per node ({self.num_nodes}), "
                f"got shape {labels.shape}"
            )
        return self._masked(labels[self.rows_np] == labels[self.indices_np])

    def _masked(self, keep: np.ndarray) -> "FastNetwork":
        """Build the derived view for a per-CSR-entry boolean mask."""
        new_indices = self.indices_np[keep]
        new_degrees = np.bincount(
            self.rows_np[keep], minlength=self.num_nodes
        ).astype(np.int64)
        new_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(new_degrees, out=new_indptr[1:])
        return self._sibling(new_indptr, new_indices, new_degrees, self.line_meta)

    def _sibling(
        self, indptr: np.ndarray, indices: np.ndarray, degrees: np.ndarray, line_meta
    ) -> "FastNetwork":
        """A view over the same node set (order, ids) with new CSR arrays."""
        derived = FastNetwork(None)
        derived.network = None
        derived._order = self._order
        derived._index_of = self._index_of
        derived._order_provider = self._order_provider
        derived.line_meta = line_meta
        derived.unique_ids = self.unique_ids
        derived.num_nodes = self.num_nodes
        derived.indices = _int64_array(indices)
        derived.indptr = _int64_array(indptr)
        derived.degrees = _int64_array(degrees)
        derived.max_degree = int(degrees.max()) if self.num_nodes else 0
        # Neighbor-identifier structures are materialized lazily (see the
        # neighbor_ids property): the vectorized engine never touches them.
        derived._neighbor_ids = None
        derived._neighbor_id_sets = None
        return derived

    def with_edge_updates(
        self,
        add_u: np.ndarray,
        add_v: np.ndarray,
        remove_u: np.ndarray,
        remove_v: np.ndarray,
    ) -> "FastNetwork":
        """A sibling view with the given edges removed and/or inserted.

        This is the CSR patch step of the dynamic-recoloring subsystem
        (:mod:`repro.dynamic`): removals and insertions arrive as raw
        ``int64`` endpoint arrays, the surviving directed entries are
        delta-merged with the (sorted) insertion keys, and the new CSR is
        rebuilt from incrementally patched degrees with one cumsum -- never
        a full symmetrize-lexsort over the whole edge set, so a small batch
        costs ``O(|E| + |batch| log |batch|)`` straight array work (the
        ``O(|E|)`` part is just masks/inserts on the key and index columns;
        no per-entry key decode, no full bincount).

        Semantics match :meth:`from_edge_array`: the node set is fixed,
        duplicate insertions (and insertions of already-present edges) are
        deduplicated silently, removals of absent edges are no-ops, and
        self-loops are rejected.  Removals are applied before insertions, so
        an edge listed in both ends up present.  The derived view shares
        ``order`` / ``unique_ids`` with this one; any line-graph incidence
        metadata is dropped (the edge set changed).
        """
        n = self.num_nodes
        add_u = np.ascontiguousarray(add_u, dtype=np.int64).ravel()
        add_v = np.ascontiguousarray(add_v, dtype=np.int64).ravel()
        remove_u = np.ascontiguousarray(remove_u, dtype=np.int64).ravel()
        remove_v = np.ascontiguousarray(remove_v, dtype=np.int64).ravel()
        if add_u.shape != add_v.shape or remove_u.shape != remove_v.shape:
            raise InvalidParameterError("endpoint arrays disagree in length")
        for endpoints in (add_u, add_v, remove_u, remove_v):
            if len(endpoints) and (endpoints.min() < 0 or endpoints.max() >= n):
                raise InvalidParameterError(
                    f"edge endpoints must be dense indices in 0..{n - 1}"
                )
        if (add_u == add_v).any():
            offender = int(add_u[int(np.argmax(add_u == add_v))])
            raise InvalidParameterError(
                f"self-loop at node {self.order[offender]!r} is not allowed "
                "in the LOCAL model"
            )

        # The key and index columns are patched in lockstep, and degrees are
        # adjusted per affected row -- the only O(|E|) work is the masks and
        # inserts themselves; rows are never decoded out of the keys.
        keys = self.edge_keys_np
        cols = self.indices_np
        degrees = self.degrees_np.copy()
        if len(remove_u):
            drop = np.unique(
                np.concatenate([remove_u * n + remove_v, remove_v * n + remove_u])
            )
            slots = np.searchsorted(keys, drop)
            inside = slots < len(keys)
            hit = slots[inside][keys[slots[inside]] == drop[inside]]
            if len(hit):
                keep = np.ones(len(keys), dtype=bool)
                keep[hit] = False
                np.subtract.at(degrees, keys[hit] // n, 1)
                keys = keys[keep]
                cols = cols[keep]
        if len(add_u):
            fresh = np.unique(
                np.concatenate([add_u * n + add_v, add_v * n + add_u])
            )
            slots = np.searchsorted(keys, fresh)
            present = np.zeros(len(fresh), dtype=bool)
            inside = slots < len(keys)
            present[inside] = keys[slots[inside]] == fresh[inside]
            fresh = fresh[~present]
            if len(fresh):
                where = np.searchsorted(keys, fresh)
                keys = np.insert(keys, where, fresh)
                cols = np.insert(cols, where, fresh % n)
                np.add.at(degrees, fresh // n, 1)

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        derived = self._sibling(indptr, cols, degrees, None)
        derived._np_cache["edge_keys"] = keys
        return derived

    def induced(self, node_mask: np.ndarray) -> Tuple["FastNetwork", np.ndarray]:
        """The *compact* induced subgraph on the unmasked nodes.

        Unlike :meth:`filtered`, which keeps every node of the parent (so a
        run over the view still pays ``O(n)`` per phase), the induced view
        relabels the ``k`` selected nodes to dense indices ``0..k-1`` and
        drops everything else -- this is what makes the dynamic-recoloring
        repair (:mod:`repro.dynamic`) proportional to the conflict ball
        instead of the whole graph.  Returns ``(subgraph, nodes)`` where
        ``nodes`` holds the parent dense index of each sub-index.

        The sub-view's unique ids are compacted to ``1..k`` (selection
        preserves the parent's id order, so dense order remains unique-id
        order and the standalone graph satisfies every ``id <= n`` palette
        contract); the parent *identifiers* are deferred behind a lazy
        provider, so nothing is interned unless an audit path asks.
        """
        mask = np.asarray(node_mask, dtype=bool)
        if mask.shape != (self.num_nodes,):
            raise InvalidParameterError(
                f"node_mask must have one entry per node ({self.num_nodes}), "
                f"got shape {mask.shape}"
            )
        nodes = np.flatnonzero(mask)
        relabel = np.full(self.num_nodes, -1, dtype=np.int64)
        relabel[nodes] = np.arange(len(nodes), dtype=np.int64)
        # Gather only the selected nodes' adjacency slices (O(volume of the
        # selection), not O(|E|)): the repair path of :mod:`repro.dynamic`
        # calls this once per update batch, and the conflict ball is tiny
        # next to the graph.  Row/neighbor order is preserved, so the CSR is
        # identical to what a full-mask scan would build.
        counts = self.degrees_np[nodes]
        total = int(counts.sum())
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        entries = np.repeat(self.indptr_np[nodes], counts) + offsets
        neighbors = self.indices_np[entries]
        inside = mask[neighbors]
        sub_rows = np.repeat(np.arange(len(nodes), dtype=np.int64), counts)[inside]
        sub_cols = relabel[neighbors[inside]]
        degrees = np.bincount(sub_rows, minlength=len(nodes)).astype(np.int64)
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])

        parent = self
        picked = nodes.tolist()

        def identifiers() -> Tuple[Hashable, ...]:
            order = parent.order
            return tuple(order[i] for i in picked)

        sub = FastNetwork._from_parts(
            indptr,
            sub_cols,
            degrees,
            len(nodes),
            None,  # compacted to 1..k; parent id order is preserved
            identifiers,
        )
        return sub, nodes

    def to_network(self) -> Network:
        """The :class:`Network` with exactly this adjacency (cached).

        For a view compiled from a network this is that network; for a
        derived (filtered) view the network is materialized on first use --
        the reference engine audits filtered runs through this path.  The
        materialized network is identical (same node order, same neighbor
        order, same unique identifiers) to the one
        :meth:`Network.filtered_by_edge` would have produced, because both
        orders are determined by the inherited unique identifiers.
        """
        if self.network is None:
            adjacency = {
                node: self.neighbor_ids[i] for i, node in enumerate(self.order)
            }
            unique_ids = {node: self.unique_ids[i] for i, node in enumerate(self.order)}
            self.network = Network(adjacency, unique_ids=unique_ids)
        return self.network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FastNetwork(n={self.num_nodes}, nnz={len(self.indices)})"


def as_network(network) -> Network:
    """The legacy :class:`Network` for ``network`` (materialized on demand).

    The inverse convenience of :func:`fast_view`: algorithms that still need
    the mapping-based :class:`Network` API (the sequential baselines, the
    legacy line-graph constructor) call this at their boundary, so they keep
    accepting array-built :class:`FastNetwork` workloads.
    """
    if isinstance(network, FastNetwork):
        return network.to_network()
    return network


def fast_view(network) -> FastNetwork:
    """The cached :class:`FastNetwork` of ``network`` (compiled on first use).

    Accepts a :class:`FastNetwork` and returns it unchanged, so algorithm
    code can be handed either representation.  Networks are immutable once
    constructed, so the compiled view is stored on the network object and
    shared by every scheduler that runs on it.
    """
    if isinstance(network, FastNetwork):
        return network
    cached = getattr(network, "_fast_view_cache", None)
    if cached is None:
        cached = FastNetwork(network)
        object.__setattr__(network, "_fast_view_cache", cached)
    return cached
