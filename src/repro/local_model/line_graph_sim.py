"""Simulation of line-graph algorithms on the original network (Lemma 5.2).

The paper's edge-coloring algorithms are obtained by running vertex-coloring
algorithms on the line graph ``L(G)``.  In the distributed setting the input
network is ``G``, not ``L(G)``, so Lemma 5.2 shows how ``G`` simulates an
algorithm for ``L(G)``:

* every edge ``e = (u, v)`` of ``G`` is simulated by its endpoint with the
  smaller identifier, and the vertex of ``L(G)`` corresponding to ``e`` gets
  the identifier ``(Id(u), Id(v))``;
* a message between two adjacent ``L(G)``-vertices travels over at most two
  edges of ``G`` (through the shared endpoint), so every round of the
  ``L(G)``-algorithm costs at most two rounds of ``G``, plus ``O(1)`` rounds
  to set up the edge identifiers;
* a vertex of ``G`` simulates up to ``deg(v)`` vertices of ``L(G)``, so it may
  need to forward up to ``Delta`` messages over one edge in one round --
  which is why this route needs messages of size ``O(Delta log n)``.

This module executes the ``L(G)``-algorithm on an explicitly derived
line-graph view (built directly from ``G``'s CSR arrays by
:func:`~repro.local_model.line_csr.build_line_graph_fast`, which yields
exactly the outputs the simulation would produce) and then applies the
Lemma 5.2 accounting to the metrics: rounds become ``2 T + O(1)`` and the
per-edge bandwidth is multiplied by the simulation load factor.  The
accounting itself -- :func:`apply_lemma_5_2_accounting` -- is shared with
:func:`repro.core.edge_coloring.color_edges`'s simulation route, which
charges the identical adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple, Union

from repro.local_model.algorithm import PhasePipeline, SynchronousPhase
from repro.local_model.fast_network import FastNetwork
from repro.local_model.metrics import PhaseMetrics, RunMetrics
from repro.local_model.network import Network
from repro.local_model.scheduler import PhaseResult

#: Additive setup cost of Lemma 5.2 (computing the unique edge identifiers).
SIMULATION_SETUP_ROUNDS = 1


@dataclass
class LineGraphSimulationResult:
    """Result of simulating an ``L(G)``-algorithm on ``G``.

    Attributes
    ----------
    edge_states:
        Final state of every simulated ``L(G)``-vertex, keyed by the canonical
        edge ``(u, v)`` of ``G`` it corresponds to.
    metrics:
        Metrics *after* the Lemma 5.2 adjustment (rounds ``2T + O(1)``,
        message sizes scaled by the simulation load).
    line_graph_metrics:
        The raw metrics of the algorithm as executed on ``L(G)`` itself,
        before adjustment (useful for comparing the two accountings).
    line_fast:
        The CSR line-graph view the algorithm ran on; :attr:`line_network`
        materializes (and caches) the equivalent legacy
        :class:`~repro.local_model.network.Network` on first use.
    """

    edge_states: Dict[Tuple[Hashable, Hashable], Dict[str, Any]]
    metrics: RunMetrics
    line_graph_metrics: RunMetrics
    line_fast: FastNetwork

    @property
    def line_network(self) -> Network:
        """The explicit line-graph :class:`Network` (materialized lazily)."""
        return self.line_fast.to_network()


def simulate_on_line_graph(
    network: Network,
    algorithm: Union[SynchronousPhase, PhasePipeline],
    globals_extra: Optional[Mapping[str, Any]] = None,
    initial_states: Optional[Mapping[Hashable, Dict[str, Any]]] = None,
    engine: Optional[str] = None,
) -> LineGraphSimulationResult:
    """Run ``algorithm`` on ``L(G)`` and account its cost on ``G`` per Lemma 5.2.

    Parameters
    ----------
    network:
        The original network ``G``.
    algorithm:
        A phase or pipeline written for vertex coloring of ``L(G)``.
    globals_extra:
        Extra globally-known values for the algorithm (e.g. parameters).
    initial_states:
        Optional per-``L(G)``-vertex initial states, keyed by canonical edge.

    Returns
    -------
    LineGraphSimulationResult
        The per-edge outputs plus both the raw and the adjusted metrics.
    """
    from repro.local_model.engine import make_scheduler
    from repro.local_model.line_csr import build_line_graph_fast

    line_fast = build_line_graph_fast(network)
    scheduler = make_scheduler(line_fast, engine=engine, globals_extra=globals_extra)
    result: PhaseResult = scheduler.run(algorithm, initial_states=initial_states)

    adjusted = apply_lemma_5_2_accounting(network, result.metrics)
    return LineGraphSimulationResult(
        edge_states=dict(result.states),
        metrics=adjusted,
        line_graph_metrics=result.metrics,
        line_fast=line_fast,
    )


def apply_lemma_5_2_accounting(network, raw: RunMetrics) -> RunMetrics:
    """Convert metrics measured on ``L(G)`` into their cost on ``G``.

    Every ``L(G)`` round costs at most two ``G`` rounds (plus the
    :data:`SIMULATION_SETUP_ROUNDS` identifier setup).  A vertex ``v`` of
    ``G`` simulates up to ``deg(v)`` line-graph vertices, so the words it must
    push over a single edge of ``G`` in one round grow by a factor of at most
    ``Delta`` -- this is the ``O(Delta log n)`` message size of Theorem 5.3.
    ``network`` is ``G`` (a :class:`Network` or ``FastNetwork`` view).
    """
    load_factor = max(1, network.max_degree)
    adjusted = RunMetrics()
    adjusted.add_phase(
        PhaseMetrics(name="lemma-5.2-setup", rounds=SIMULATION_SETUP_ROUNDS)
    )
    for phase in raw.phases:
        adjusted.add_phase(
            PhaseMetrics(
                name=f"sim:{phase.name}",
                rounds=2 * phase.rounds,
                messages=phase.messages,
                total_words=phase.total_words,
                max_message_words=phase.max_message_words * load_factor,
            )
        )
    # The adjustment must not hide which phases ran on a fallback path, nor
    # drop the measured wall-time breakdown.
    adjusted.fallback_phase_names.extend(raw.fallback_phase_names)
    adjusted.compiled_fallback_phase_names.extend(raw.compiled_fallback_phase_names)
    for name, seconds in raw.phase_seconds.items():
        adjusted.add_phase_seconds(name, seconds)
    return adjusted
