"""The batched round engine: a drop-in, fast alternative to the scheduler.

:class:`BatchedScheduler` exposes the exact constructor and :meth:`run` API of
:class:`~repro.local_model.scheduler.Scheduler` and produces *bit-identical*
results -- the same final node states, the same round counts, and the same
:class:`~repro.local_model.metrics.RunMetrics` (tests/test_engine_equivalence.py
locks this down).  It differs purely in how a round is executed:

* the network is compiled once into a :class:`~repro.local_model.fast_network.FastNetwork`
  (dense indices, CSR adjacency, pre-resolved unique-id ordering);
* node states, views and inboxes live in flat lists indexed by dense node
  index; inbox dictionaries are allocated once per phase and cleared in place
  instead of being re-created every round;
* only *live* (non-halted) nodes are visited -- the reference scheduler scans
  every node every round;
* phases declaring :class:`~repro.local_model.algorithm.BroadcastPhase`
  build their per-round payload once, deliver it by direct writes into the
  neighbors' inboxes, and are charged ``degree`` messages arithmetically --
  no per-neighbor outbox dictionaries, no per-message size recomputation;
* message validation uses per-node neighbor-identifier sets (``O(1)``)
  instead of an ``O(degree)`` adjacency scan.

Phases must not retain the inbox mapping passed to ``receive`` beyond the
call (no phase in this package does); broadcast payloads are shared objects
and must not be mutated by receivers.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple, Union

from repro.exceptions import RoundLimitExceeded, SimulationError
from repro.local_model.algorithm import (
    SILENT,
    LocalComputationPhase,
    LocalView,
    PhasePipeline,
    SynchronousPhase,
)
from repro.local_model.fast_network import FastNetwork, fast_view
from repro.local_model.messages import payload_size_words
from repro.local_model.metrics import PhaseMetrics, RunMetrics
from repro.local_model.network import Network
from repro.local_model.scheduler import PhaseResult
from repro.local_model.state_table import StateTable

#: Schedulers accept either representation; a FastNetwork is used as-is, so
#: CSR-masked sub-networks (FastNetwork.filtered) run without any rebuild.
NetworkLike = Union[Network, FastNetwork]

#: Payload types whose size is one word by definition (the common case for
#: broadcast phases, which announce a single color); checked by exact class so
#: the fallback to :func:`payload_size_words` stays authoritative.
_SCALAR_TYPES = (int, str, bool, float, type(None))


class BatchedScheduler:
    """Executes synchronous phases over the flat-array representation.

    Parameters are identical to :class:`~repro.local_model.scheduler.Scheduler`:

    network:
        The communication graph -- a :class:`Network` or a (possibly
        CSR-masked) :class:`FastNetwork`.
    globals_extra:
        Additional globally known values exposed to every node's
        :class:`~repro.local_model.algorithm.LocalView`.
    round_limit_factor:
        Multiplier applied to each phase's ``max_rounds`` safety bound.
    """

    def __init__(
        self,
        network: NetworkLike,
        globals_extra: Optional[Mapping[str, Any]] = None,
        round_limit_factor: int = 1,
    ) -> None:
        self._fast: FastNetwork = fast_view(network)
        self._globals: Dict[str, Any] = {
            "n": self._fast.num_nodes,
            "max_degree": self._fast.max_degree,
        }
        if globals_extra:
            self._globals.update(globals_extra)
        if round_limit_factor < 1:
            raise SimulationError("round_limit_factor must be at least 1")
        self._round_limit_factor = round_limit_factor

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def network(self) -> Network:
        """The :class:`Network` this scheduler runs on.

        For a scheduler constructed from a CSR-masked
        :class:`~repro.local_model.fast_network.FastNetwork` the network is
        materialized (and cached) on first access; execution itself never
        needs it.
        """
        return self._fast.to_network()

    def run(
        self,
        algorithm: Union[SynchronousPhase, PhasePipeline],
        initial_states: Optional[Mapping[Hashable, Dict[str, Any]]] = None,
        globals_override: Optional[Mapping[str, Any]] = None,
    ) -> PhaseResult:
        """Run a phase or a pipeline to completion and return its result.

        Same contract as :meth:`Scheduler.run`; ``initial_states`` entries are
        copied into the per-node state dictionaries before the first phase.
        """
        fast = self._fast
        n = fast.num_nodes
        order = fast.order
        index_of = fast.index_of

        states: List[Dict[str, Any]] = [{} for _ in range(n)]
        if initial_states:
            for node_id, seed in initial_states.items():
                index = index_of.get(node_id)
                if index is not None:
                    states[index].update(dict(seed))

        metrics = self._execute(algorithm, states, globals_override)
        return PhaseResult(
            states={order[i]: states[i] for i in range(n)},
            metrics=metrics,
        )

    def run_table(
        self,
        algorithm: Union[SynchronousPhase, PhasePipeline],
        table: StateTable,
        globals_override: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[StateTable, RunMetrics]:
        """Run a phase or pipeline with a :class:`StateTable` as node state.

        ``table`` rows must be in this scheduler's dense node order (the
        ``order`` of its :class:`~repro.local_model.fast_network.FastNetwork`);
        the input table is consumed and a table holding the final states is
        returned together with the run's metrics.  The result is
        *bit-identical* (up to the exact dict materialization of
        :meth:`StateTable.to_dicts`) to seeding :meth:`run` with the table's
        dict view -- that is precisely how this base implementation executes;
        the vectorized scheduler overrides it to keep the columns native.
        """
        fast = self._fast
        if table.num_rows != fast.num_nodes:
            raise SimulationError(
                f"state table has {table.num_rows} rows, network has "
                f"{fast.num_nodes} nodes"
            )
        states = table.to_dicts()
        metrics = self._execute(algorithm, states, globals_override)
        return StateTable.from_dicts(states), metrics

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolved_globals(
        self, globals_override: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        global_values = dict(self._globals)
        if globals_override:
            global_values.update(globals_override)
        return global_values

    def _build_views(self, global_values: Mapping[str, Any]) -> List[LocalView]:
        fast = self._fast
        order = fast.order
        unique_ids = fast.unique_ids
        neighbor_ids = fast.neighbor_ids
        return [
            LocalView(
                node_id=order[i],
                unique_id=unique_ids[i],
                neighbors=neighbor_ids[i],
                globals=global_values,
            )
            for i in range(fast.num_nodes)
        ]

    def _execute(
        self,
        algorithm: Union[SynchronousPhase, PhasePipeline],
        states: List[Dict[str, Any]],
        globals_override: Optional[Mapping[str, Any]],
    ) -> RunMetrics:
        views = self._build_views(self._resolved_globals(globals_override))
        metrics = RunMetrics()
        phases = algorithm.phases if isinstance(algorithm, PhasePipeline) else (algorithm,)
        for phase in phases:
            started = time.perf_counter()
            phase_metrics = self._run_single_phase(phase, states, views)
            metrics.add_phase(phase_metrics)
            metrics.add_phase_seconds(phase_metrics.name, time.perf_counter() - started)
        return metrics

    def _run_single_phase(
        self,
        phase: SynchronousPhase,
        states: List[Dict[str, Any]],
        views: List[LocalView],
    ) -> PhaseMetrics:
        fast = self._fast
        n = fast.num_nodes
        phase_metrics = PhaseMetrics(name=phase.name)

        initialize = phase.initialize
        for i in range(n):
            initialize(views[i], states[i])

        if isinstance(phase, LocalComputationPhase):
            compute = phase.compute
            for i in range(n):
                compute(views[i], states[i])
            finalize = phase.finalize
            for i in range(n):
                finalize(views[i], states[i])
            return phase_metrics

        if n == 0:
            return phase_metrics

        round_limit = self._round_limit_factor * phase.max_rounds(
            fast.num_nodes, fast.max_degree
        )

        # Per-phase flat structures: one reusable inbox dictionary per node
        # and, per node, the list of its neighbors' inboxes in delivery order.
        # Zipping the per-node pieces into single tuples keeps the hot loops
        # down to one index plus one unpack per node.
        inboxes: List[Dict[Hashable, Any]] = [{} for _ in range(n)]
        indptr, indices = fast.indptr, fast.indices
        inbox_targets = [
            [inboxes[j] for j in indices[indptr[i] : indptr[i + 1]]] for i in range(n)
        ]
        order = fast.order
        neighbor_id_sets = fast.neighbor_id_sets
        index_of = fast.index_of
        send_context = list(zip(views, states, inbox_targets, order, neighbor_id_sets))
        receive_context = list(zip(views, states, inboxes))

        use_broadcast = getattr(phase, "supports_broadcast", False)
        broadcast = phase.broadcast if use_broadcast else None
        send = phase.send
        receive = phase.receive

        live = list(range(n))
        round_index = 0
        while live:
            round_index += 1
            if round_index > round_limit:
                raise RoundLimitExceeded(
                    f"phase {phase.name!r} exceeded its round budget of {round_limit}"
                )

            # --- Send: collect, validate, deliver, and account messages. --- #
            messages = phase_metrics.messages
            total_words = phase_metrics.total_words
            max_words = phase_metrics.max_message_words
            if use_broadcast:
                for i in live:
                    view, state, targets, sender, _ = send_context[i]
                    payload = broadcast(view, state, round_index)
                    if payload is SILENT:
                        continue
                    degree = len(targets)
                    if not degree:
                        continue
                    for inbox in targets:
                        inbox[sender] = payload
                    if type(payload) in _SCALAR_TYPES:
                        size = 1
                    else:
                        size = payload_size_words(payload)
                    messages += degree
                    total_words += degree * size
                    if size > max_words:
                        max_words = size
            else:
                for i in live:
                    view, state, _, sender, neighbor_set = send_context[i]
                    outbox = send(view, state, round_index) or {}
                    if not outbox:
                        continue
                    for receiver, payload in outbox.items():
                        if receiver not in neighbor_set:
                            raise SimulationError(
                                f"node {sender!r} attempted to message non-neighbor {receiver!r}"
                            )
                        inboxes[index_of[receiver]][sender] = payload
                        size = payload_size_words(payload)
                        messages += 1
                        total_words += size
                        if size > max_words:
                            max_words = size
            phase_metrics.messages = messages
            phase_metrics.total_words = total_words
            phase_metrics.max_message_words = max_words

            # --- Receive: process inboxes, clear them, drop halted nodes. --- #
            still_live = []
            still_live_append = still_live.append
            for i in live:
                view, state, inbox = receive_context[i]
                halted = receive(view, state, inbox, round_index)
                if inbox:
                    inbox.clear()
                if not halted:
                    still_live_append(i)
            live = still_live

            phase_metrics.rounds = round_index

        finalize = phase.finalize
        for i in range(n):
            finalize(views[i], states[i])
        return phase_metrics
