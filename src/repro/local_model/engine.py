"""Engine selection: reference scheduler, batched engine, vectorized engine.

The package ships three interchangeable execution paths for synchronous
phases:

* ``"reference"`` -- :class:`~repro.local_model.scheduler.Scheduler`, the
  direct transcription of the paper's model (one message object at a time,
  per-round validation).  Maximally transparent; use it when debugging a
  phase or when exactness of the *simulation* itself is under scrutiny.
* ``"batched"`` -- :class:`~repro.local_model.batched.BatchedScheduler`, the
  flat-array engine (the process-wide default).  Produces bit-identical
  states and metrics (enforced by ``tests/test_engine_equivalence.py``) at a
  fraction of the cost.
* ``"vectorized"`` -- :class:`~repro.local_model.vectorized.VectorizedScheduler`,
  which additionally executes the pure-color phases (Linial recoloring, the
  color reductions, the defective polynomial steps, ``psi``-selection) as
  numpy kernels over the CSR arrays, falling back to the batched path per
  phase for everything else.  Use it for large instances.
* ``"compiled"`` -- :class:`~repro.local_model.compiled.CompiledScheduler`,
  the vectorized engine plus fused multi-core kernels (numba or a
  C/OpenMP extension, see :mod:`repro.local_model.kernels`) for the per-round
  hot loops, falling back to the numpy ``vector_run`` per phase when no
  kernel (or no backend) exists.  Bit-identical to ``"vectorized"`` in
  every configuration; fastest on large instances with multiple cores.

Every high-level algorithm (``run_legal_coloring``, ``color_edges``, ...)
accepts an ``engine`` argument that is resolved here; ``None`` falls back to
the process-wide default, which can be flipped globally with
:func:`set_default_engine` or temporarily with the :func:`use_engine` context
manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Union

from repro.exceptions import InvalidParameterError
from repro.local_model.batched import BatchedScheduler, NetworkLike
from repro.local_model.compiled import CompiledScheduler
from repro.local_model.fast_network import FastNetwork
from repro.local_model.scheduler import Scheduler
from repro.local_model.vectorized import VectorizedScheduler

#: Any scheduler class satisfies the same constructor / ``run`` protocol.
SchedulerLike = Union[Scheduler, BatchedScheduler]

_ENGINES: Dict[str, Callable[..., SchedulerLike]] = {
    "reference": Scheduler,
    "batched": BatchedScheduler,
    "vectorized": VectorizedScheduler,
    "compiled": CompiledScheduler,
}

_default_engine: str = "batched"


def available_engines() -> tuple:
    """Names of the registered execution engines."""
    return tuple(sorted(_ENGINES))


def resolve_engine(engine: Optional[str] = None) -> str:
    """Validate ``engine`` and substitute the process default for ``None``."""
    name = _default_engine if engine is None else engine
    if name not in _ENGINES:
        raise InvalidParameterError(
            f"unknown engine {name!r}; available engines: {available_engines()}"
        )
    return name


def default_engine() -> str:
    """The current process-wide default engine name."""
    return _default_engine


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (any of :func:`available_engines`)."""
    global _default_engine
    _default_engine = resolve_engine(engine)


@contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Temporarily switch the default engine within a ``with`` block."""
    global _default_engine
    previous = _default_engine
    _default_engine = resolve_engine(engine)
    try:
        yield _default_engine
    finally:
        _default_engine = previous


def make_scheduler(
    network: NetworkLike,
    engine: Optional[str] = None,
    globals_extra: Optional[Mapping[str, Any]] = None,
    round_limit_factor: int = 1,
) -> SchedulerLike:
    """Instantiate the scheduler for ``engine`` (default: the process default).

    This is the single seam through which all core algorithms obtain their
    executor, so every algorithm runs unchanged on every path.  ``network``
    may be a :class:`~repro.local_model.network.Network` or a (possibly
    CSR-masked) :class:`~repro.local_model.fast_network.FastNetwork`; the
    reference engine materializes the latter into the identical
    :class:`~repro.local_model.network.Network` on demand, so filtered views
    remain fully auditable.
    """
    name = resolve_engine(engine)
    if name == "reference" and isinstance(network, FastNetwork):
        network = network.to_network()
    factory = _ENGINES[name]
    return factory(
        network,
        globals_extra=globals_extra,
        round_limit_factor=round_limit_factor,
    )
