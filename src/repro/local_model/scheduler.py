"""The synchronous round scheduler.

The scheduler executes a phase (or a pipeline of phases) on a
:class:`~repro.local_model.network.Network`: in every round it collects the
outgoing messages of all live nodes, validates that messages only travel over
edges of the network, delivers them, and lets every node process its inbox.
It accumulates :class:`~repro.local_model.metrics.RunMetrics` -- the exact
quantities (rounds, message sizes) the paper's theorems bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Mapping, Optional, Union

from repro.exceptions import RoundLimitExceeded, SimulationError
from repro.local_model.algorithm import (
    LocalComputationPhase,
    LocalView,
    PhasePipeline,
    SynchronousPhase,
)
from repro.local_model.messages import payload_size_words
from repro.local_model.metrics import PhaseMetrics, RunMetrics
from repro.local_model.network import Network
from repro.local_model.node import Node
from repro.local_model.state_table import StateTable


@dataclass
class PhaseResult:
    """The outcome of running a phase or pipeline.

    Attributes
    ----------
    states:
        The final per-node state dictionaries, keyed by node identifier.
    metrics:
        Accumulated round / message / bandwidth metrics.
    """

    states: Dict[Hashable, Dict[str, Any]]
    metrics: RunMetrics = field(default_factory=RunMetrics)

    def extract(self, key: str) -> Dict[Hashable, Any]:
        """Collect ``state[key]`` for every node (raises ``KeyError`` if absent)."""
        return {node: state[key] for node, state in self.states.items()}


class Scheduler:
    """Executes synchronous phases on a network.

    Parameters
    ----------
    network:
        The communication graph.
    globals_extra:
        Additional globally known values exposed to every node's
        :class:`~repro.local_model.algorithm.LocalView` (algorithm parameters,
        degree bounds, ...).  ``n`` and ``max_degree`` are always present.
    round_limit_factor:
        Multiplier applied to each phase's declared ``max_rounds`` safety
        bound before aborting (useful in stress tests).
    """

    def __init__(
        self,
        network: Network,
        globals_extra: Optional[Mapping[str, Any]] = None,
        round_limit_factor: int = 1,
    ) -> None:
        self.network = network
        self._globals: Dict[str, Any] = {
            "n": network.num_nodes,
            "max_degree": network.max_degree,
        }
        if globals_extra:
            self._globals.update(globals_extra)
        if round_limit_factor < 1:
            raise SimulationError("round_limit_factor must be at least 1")
        self._round_limit_factor = round_limit_factor

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(
        self,
        algorithm: Union[SynchronousPhase, PhasePipeline],
        initial_states: Optional[Mapping[Hashable, Dict[str, Any]]] = None,
        globals_override: Optional[Mapping[str, Any]] = None,
    ) -> PhaseResult:
        """Run a phase or a pipeline to completion and return its result.

        ``initial_states`` seeds the node state dictionaries (they are copied)
        so that outputs of a previous run -- for instance an auxiliary
        coloring -- can be fed into a later algorithm, mirroring how the paper
        reuses the coloring ``rho`` across procedures.
        """
        nodes = self.network.create_nodes()
        if initial_states:
            for node_id, seed in initial_states.items():
                if node_id in nodes:
                    nodes[node_id].state.update(dict(seed))

        global_values = dict(self._globals)
        if globals_override:
            global_values.update(globals_override)

        views = {
            node_id: LocalView(
                node_id=node_id,
                unique_id=node.unique_id,
                neighbors=node.neighbors,
                globals=global_values,
            )
            for node_id, node in nodes.items()
        }

        metrics = RunMetrics()
        phases = algorithm.phases if isinstance(algorithm, PhasePipeline) else (algorithm,)
        for phase in phases:
            started = time.perf_counter()
            phase_metrics = self._run_single_phase(phase, nodes, views)
            metrics.add_phase(phase_metrics)
            metrics.add_phase_seconds(phase_metrics.name, time.perf_counter() - started)

        return PhaseResult(
            states={node_id: node.state for node_id, node in nodes.items()},
            metrics=metrics,
        )

    def run_table(self, algorithm, table, globals_override=None):
        """Run with a :class:`~repro.local_model.state_table.StateTable` state.

        The reference scheduler has no columnar execution path -- this is the
        exact dict-view boundary: the table is materialized into per-node
        dictionaries (rows follow the network's deterministic node order),
        :meth:`run` executes unchanged, and the final states are re-absorbed.
        Returns ``(table, metrics)`` like the other engines' ``run_table``.
        """
        order = self.network.nodes()
        if table.num_rows != len(order):
            raise SimulationError(
                f"state table has {table.num_rows} rows, network has "
                f"{len(order)} nodes"
            )
        result = self.run(
            algorithm,
            initial_states=table.to_mapping(order),
            globals_override=globals_override,
        )
        final = StateTable.from_dicts([result.states[node] for node in order])
        return final, result.metrics

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _run_single_phase(
        self,
        phase: SynchronousPhase,
        nodes: Dict[Hashable, Node],
        views: Dict[Hashable, LocalView],
    ) -> PhaseMetrics:
        phase_metrics = PhaseMetrics(name=phase.name)

        for node in nodes.values():
            node.reset_for_phase()
        for node_id, node in nodes.items():
            phase.initialize(views[node_id], node.state)

        if isinstance(phase, LocalComputationPhase):
            for node_id, node in nodes.items():
                phase.compute(views[node_id], node.state)
                node.halted = True
            for node_id, node in nodes.items():
                phase.finalize(views[node_id], node.state)
            return phase_metrics

        if not nodes:
            return phase_metrics

        round_limit = self._round_limit_factor * phase.max_rounds(
            self.network.num_nodes, self.network.max_degree
        )

        round_index = 0
        while any(not node.halted for node in nodes.values()):
            round_index += 1
            if round_index > round_limit:
                raise RoundLimitExceeded(
                    f"phase {phase.name!r} exceeded its round budget of {round_limit}"
                )

            # Collect and validate outgoing messages from live nodes.
            inboxes: Dict[Hashable, Dict[Hashable, Any]] = {
                node_id: {} for node_id in nodes
            }
            for node_id, node in nodes.items():
                if node.halted:
                    continue
                outbox = phase.send(views[node_id], node.state, round_index) or {}
                for receiver, payload in outbox.items():
                    if not self.network.has_edge(node_id, receiver):
                        raise SimulationError(
                            f"node {node_id!r} attempted to message non-neighbor {receiver!r}"
                        )
                    inboxes[receiver][node_id] = payload
                    phase_metrics.record_message(payload_size_words(payload))

            # Deliver and process.
            for node_id, node in nodes.items():
                if node.halted:
                    continue
                halted = phase.receive(
                    views[node_id], node.state, inboxes[node_id], round_index
                )
                if halted:
                    node.halted = True

            phase_metrics.rounds = round_index

        for node_id, node in nodes.items():
            phase.finalize(views[node_id], node.state)
        return phase_metrics
