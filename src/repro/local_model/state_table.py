"""The columnar node-state store.

Every engine ultimately manipulates *per-node state*: the reference scheduler
and the batched engine as one Python dictionary per node, the vectorized
engine as numpy columns gathered from (and scattered back into) those
dictionaries.  For large instances the dictionaries themselves become the
bottleneck -- every scheduler run marshals ``n`` dicts in and out, and the
driver loops of Procedure Legal-Color do per-node tuple bookkeeping between
runs.

:class:`StateTable` stores the same information column-wise:

* **int columns** -- ``int64`` numpy arrays for values that are plain Python
  ints (colors, psi values, scratch keys), the overwhelmingly common case;
* **path columns** -- the recursion-path tuples of Procedure Legal-Color,
  *interned*: the column holds one dense ``int64`` id per node plus a table
  of distinct tuples, so "extend every path by this level's psi-color" and
  "which nodes share a path" are single array operations
  (:meth:`append_to_paths`, :meth:`path_ids`);
* **object columns** -- an escape hatch holding references to arbitrary
  Python values (lists, sets, ``None``, booleans, ...), exactly as a dict
  would.

Each column carries an optional presence mask so states that only exist on
some nodes (partial ``initial_states`` seeds) round-trip exactly.

The dict view is recovered with :meth:`to_dicts` / built with
:meth:`from_dicts`; the round-trip is *exact* up to Python equality --
``StateTable.from_dicts(d).to_dicts() == d`` for any states the engines
produce (property-tested in ``tests/test_state_table.py``).  Two deliberate
normalizations are invisible to ``==`` (and therefore to the engine
equivalence contract): int columns materialize fresh (equal) int objects, and
interning replaces equal path tuples by one shared tuple object.

The table is the *native* representation of the batched and vectorized
schedulers' ``run_table`` entry points (see
:meth:`repro.local_model.batched.BatchedScheduler.run_table`); rows are in
the dense node order of the :class:`~repro.local_model.fast_network.FastNetwork`
the table travels with, and the table itself never stores node identifiers.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError

#: Column kind tags (see :meth:`StateTable.kind`).
INT_KIND = "int"
PATH_KIND = "path"
OBJECT_KIND = "object"


class _IntColumn:
    """A full-or-masked column of plain Python ints, stored as ``int64``."""

    __slots__ = ("values", "present")
    kind = INT_KIND

    def __init__(self, values: np.ndarray, present: Optional[np.ndarray]) -> None:
        self.values = values
        self.present = present  # None means "present on every node".


class _PathColumn:
    """Interned tuples: per-node dense ids into a table of distinct tuples.

    ``interned`` is append-only shared data: columns derived from one another
    (copies, extensions) may share it, so it must never be mutated in place.
    """

    __slots__ = ("ids", "interned", "present")
    kind = PATH_KIND

    def __init__(
        self,
        ids: np.ndarray,
        interned: Sequence[Tuple[Any, ...]],
        present: Optional[np.ndarray],
    ) -> None:
        self.ids = ids
        self.interned = interned
        self.present = present


class _ObjectColumn:
    """References to arbitrary per-node Python values (the escape hatch)."""

    __slots__ = ("values", "present")
    kind = OBJECT_KIND

    def __init__(self, values: List[Any], present: Optional[np.ndarray]) -> None:
        self.values = values
        self.present = present


def _as_int64(values: np.ndarray) -> np.ndarray:
    out = np.asarray(values)
    if out.dtype != np.int64:
        out = out.astype(np.int64)
    return out


class StateTable:
    """Typed columns over a fixed number of node-state rows.

    Parameters
    ----------
    num_rows:
        Number of nodes (rows).  Rows are addressed by dense index; the
        mapping to node identifiers is owned by the network the table
        travels with.
    """

    __slots__ = ("num_rows", "_columns")

    def __init__(self, num_rows: int) -> None:
        if num_rows < 0:
            raise InvalidParameterError("num_rows must be non-negative")
        self.num_rows = num_rows
        self._columns: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Construction / materialization (the engine boundary)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dicts(cls, dicts: Sequence[Dict[str, Any]]) -> "StateTable":
        """Build a table holding exactly the entries of ``dicts``.

        Classification is per key over the values present: all plain ints
        (``type(value) is int`` -- ``bool`` goes to the object column so the
        stored type survives) become an int column, all tuples become an
        interned path column, anything mixed or non-scalar becomes an object
        column.
        """
        table = cls(len(dicts))
        keys: Dict[str, None] = {}
        for state in dicts:
            for key in state:
                keys.setdefault(key)
        for key in keys:
            table._columns[key] = cls._classify(key, dicts)
        return table

    @staticmethod
    def _classify(key: str, dicts: Sequence[Dict[str, Any]]) -> Any:
        n = len(dicts)
        missing = object()
        values = [state.get(key, missing) for state in dicts]
        if any(value is missing for value in values):
            present = np.fromiter(
                (value is not missing for value in values), dtype=bool, count=n
            )
            filled = [None if value is missing else value for value in values]
        else:
            present = None
            filled = values
        return StateTable._classify_values(filled, present)

    @staticmethod
    def _classify_values(filled: List[Any], present: Optional[np.ndarray]) -> Any:
        n = len(filled)
        live_values = [v for i, v in enumerate(filled) if present is None or present[i]]
        if live_values and all(type(v) is int for v in live_values):
            ints = np.fromiter(
                (v if (present is None or present[i]) else 0 for i, v in enumerate(filled)),
                dtype=np.int64,
                count=n,
            )
            return _IntColumn(ints, present)
        if live_values and all(type(v) is tuple for v in live_values):
            lookup: Dict[Tuple[Any, ...], int] = {}
            interned: List[Tuple[Any, ...]] = []
            ids = np.zeros(n, dtype=np.int64)
            try:
                for i, v in enumerate(filled):
                    if present is not None and not present[i]:
                        continue
                    label = lookup.get(v)
                    if label is None:
                        label = lookup[v] = len(interned)
                        interned.append(v)
                    ids[i] = label
            except TypeError:  # unhashable tuple contents -- keep objects
                return _ObjectColumn(filled, present)
            return _PathColumn(ids, interned, present)
        return _ObjectColumn(list(filled), present)

    @classmethod
    def from_mapping(
        cls, states: Mapping[Hashable, Dict[str, Any]], order: Sequence[Hashable]
    ) -> "StateTable":
        """Build a table from identifier-keyed states, rows in ``order``.

        Nodes absent from ``states`` get empty rows; keys of ``states`` that
        are not in ``order`` are ignored (matching how the schedulers treat
        ``initial_states``).  Seed dictionaries are not retained -- their
        entries are copied into the columns.
        """
        empty: Dict[str, Any] = {}
        return cls.from_dicts([states.get(node, empty) for node in order])

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Materialize the exact per-row state dictionaries."""
        rows: List[Dict[str, Any]] = [{} for _ in range(self.num_rows)]
        for key, column in self._columns.items():
            present = column.present
            if column.kind == INT_KIND:
                values: Iterable[Any] = column.values.tolist()
            elif column.kind == PATH_KIND:
                interned = column.interned
                values = (interned[i] for i in column.ids.tolist())
            else:
                values = column.values
            if present is None:
                for row, value in zip(rows, values):
                    row[key] = value
            else:
                flags = present.tolist()
                for row, value, ok in zip(rows, values, flags):
                    if ok:
                        row[key] = value
        return rows

    def to_mapping(self, order: Sequence[Hashable]) -> Dict[Hashable, Dict[str, Any]]:
        """The identifier-keyed dict-of-dicts view (rows follow ``order``)."""
        if len(order) != self.num_rows:
            raise InvalidParameterError(
                f"order has {len(order)} nodes, table has {self.num_rows} rows"
            )
        return dict(zip(order, self.to_dicts()))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def keys(self) -> Tuple[str, ...]:
        """The state keys present in the table."""
        return tuple(self._columns)

    def __contains__(self, key: str) -> bool:
        return key in self._columns

    def kind(self, key: str) -> str:
        """``"int"``, ``"path"`` or ``"object"`` (raises ``KeyError``)."""
        return self._columns[key].kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {key: column.kind for key, column in self._columns.items()}
        return f"StateTable(rows={self.num_rows}, columns={kinds})"

    def _full_column(self, key: str) -> Any:
        column = self._columns[key]  # KeyError mirrors the dicts' behavior.
        if column.present is not None and not column.present.all():
            missing = int(np.flatnonzero(~column.present)[0])
            raise KeyError(
                f"state key {key!r} is missing on node index {missing}"
            )
        return column

    # ------------------------------------------------------------------ #
    # Int columns
    # ------------------------------------------------------------------ #

    def get_ints(self, key: str) -> np.ndarray:
        """A fresh ``int64`` array of ``state[key]`` over all rows.

        Raises ``KeyError`` when the key is absent (anywhere) and
        ``TypeError`` when the column does not hold plain ints -- the same
        failures a per-node ``state[key]`` gather would hit.
        """
        column = self._full_column(key)
        if column.kind == INT_KIND:
            return column.values.copy()
        if column.kind == OBJECT_KIND:
            # Mixed columns may still be all-int on the current values.
            return np.fromiter(
                (int(v) for v in column.values), dtype=np.int64, count=self.num_rows
            )
        raise TypeError(f"state key {key!r} holds paths, not ints")

    def set_ints(self, key: str, values: np.ndarray) -> None:
        """Replace ``state[key]`` on every row with the given int column."""
        values = _as_int64(values)
        if values.shape != (self.num_rows,):
            raise InvalidParameterError(
                f"column {key!r} must have shape ({self.num_rows},), got {values.shape}"
            )
        self._columns[key] = _IntColumn(values, None)

    def fill_int(self, key: str, value: int) -> None:
        """Write the same int into ``state[key]`` on every row."""
        self._columns[key] = _IntColumn(
            np.full(self.num_rows, value, dtype=np.int64), None
        )

    # ------------------------------------------------------------------ #
    # Object columns
    # ------------------------------------------------------------------ #

    def set_objects(self, key: str, values: Iterable[Any]) -> None:
        """Replace ``state[key]`` on every row with per-row Python objects."""
        values = list(values)
        if len(values) != self.num_rows:
            raise InvalidParameterError(
                f"column {key!r} must have {self.num_rows} values, got {len(values)}"
            )
        self._columns[key] = _ObjectColumn(values, None)

    def fill_object(self, key: str, value: Any) -> None:
        """Write the same (immutable) object into ``state[key]`` on every row."""
        self._columns[key] = _ObjectColumn([value] * self.num_rows, None)

    def get_values(self, key: str) -> List[Any]:
        """The per-row Python values of one column (fully present)."""
        column = self._full_column(key)
        if column.kind == INT_KIND:
            return column.values.tolist()
        if column.kind == PATH_KIND:
            interned = column.interned
            return [interned[i] for i in column.ids.tolist()]
        return list(column.values)

    def get_values_or_none(self, key: str) -> List[Any]:
        """Per-row ``state.get(key)``: the value where present, else ``None``.

        Unlike :meth:`get_values` this never raises -- a missing column (or a
        row the presence mask excludes) yields ``None``, exactly like the
        dict view's ``state.get``.
        """
        if key not in self._columns:
            return [None] * self.num_rows
        column = self._columns[key]
        if column.kind == INT_KIND:
            values: List[Any] = column.values.tolist()
        elif column.kind == PATH_KIND:
            interned = column.interned
            values = [interned[i] for i in column.ids.tolist()]
        else:
            values = list(column.values)
        if column.present is not None:
            flags = column.present.tolist()
            values = [value if ok else None for value, ok in zip(values, flags)]
        return values

    def set_values(self, key: str, values: Sequence[Any]) -> None:
        """Replace one column from per-row Python values, re-classifying them."""
        if len(values) != self.num_rows:
            raise InvalidParameterError(
                f"column {key!r} must have {self.num_rows} values, got {len(values)}"
            )
        self._columns[key] = self._classify_values(list(values), None)

    def copy_column(self, source_key: str, target_key: str) -> None:
        """``state[target] = state[source]`` on every row, kind-preserving."""
        column = self._full_column(source_key)
        if column.kind == INT_KIND:
            self._columns[target_key] = _IntColumn(column.values.copy(), None)
        elif column.kind == PATH_KIND:
            self._columns[target_key] = _PathColumn(
                column.ids.copy(), column.interned, None
            )
        else:
            self._columns[target_key] = _ObjectColumn(list(column.values), None)

    # ------------------------------------------------------------------ #
    # Path columns (the Legal-Color recursion bookkeeping)
    # ------------------------------------------------------------------ #

    def fill_path(self, key: str, path: Tuple[Any, ...] = ()) -> None:
        """Write the same tuple into ``state[key]`` on every row (interned)."""
        self._columns[key] = _PathColumn(
            np.zeros(self.num_rows, dtype=np.int64), [tuple(path)], None
        )

    def path_ids(self, key: str) -> np.ndarray:
        """The dense interned ids of a path column.

        Two rows hold an equal tuple exactly when their ids are equal -- the
        property the Legal-Color recursion's subgraph filtering needs.  The
        returned array aliases the column; treat it as read-only.
        """
        column = self._full_column(key)
        if column.kind != PATH_KIND:
            raise TypeError(f"state key {key!r} is not a path column")
        return column.ids

    def path_interned(self, key: str) -> Tuple[Tuple[Any, ...], ...]:
        """The interned tuple table of a path column (fully present).

        :meth:`path_ids` entries index into this sequence; per-distinct-path
        computations (e.g. message-size accounting over recursion paths) run
        over it instead of over every row.
        """
        column = self._full_column(key)
        if column.kind != PATH_KIND:
            raise TypeError(f"state key {key!r} is not a path column")
        return tuple(column.interned)

    def num_paths(self, key: str) -> int:
        """Number of *distinct* tuples currently held by a path column."""
        column = self._full_column(key)
        if column.kind != PATH_KIND:
            raise TypeError(f"state key {key!r} is not a path column")
        if self.num_rows == 0:
            return 0
        return int(np.unique(column.ids).size)

    def append_to_paths(self, key: str, elements: np.ndarray) -> None:
        """``state[key] = state[key] + (element,)`` on every row, vectorized.

        The per-row ``elements`` must be integers (the psi-colors of one
        recursion level).  New tuples are materialized once per *distinct*
        ``(old path, element)`` pair -- the number of subgraphs, not the
        number of nodes.
        """
        column = self._full_column(key)
        if column.kind != PATH_KIND:
            raise TypeError(f"state key {key!r} is not a path column")
        elements = _as_int64(elements)
        if elements.shape != (self.num_rows,):
            raise InvalidParameterError(
                f"elements must have shape ({self.num_rows},), got {elements.shape}"
            )
        if self.num_rows == 0:
            self._columns[key] = _PathColumn(column.ids, [], None)
            return
        low = int(elements.min())
        span = int(elements.max()) - low + 1
        combined = column.ids * span + (elements - low)
        uniques, first_seen, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        del uniques
        old_interned = column.interned
        old_ids = column.ids
        interned = [
            old_interned[old_ids[i]] + (int(elements[i]),) for i in first_seen.tolist()
        ]
        self._columns[key] = _PathColumn(
            inverse.astype(np.int64, copy=False), interned, None
        )
