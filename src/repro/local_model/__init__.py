"""Synchronous message-passing substrate (the LOCAL / CONGEST model).

This package implements the execution model the paper assumes: an ``n``-vertex
network in which every vertex hosts a processor with a unique identifier,
communication proceeds in synchronous rounds, and in each round every vertex
may send one message to each of its neighbors.  The running time of an
algorithm is the number of rounds until every vertex has terminated.

The main entry points are:

* :class:`~repro.local_model.network.Network` -- the communication graph,
* :class:`~repro.local_model.algorithm.SynchronousPhase` -- the per-node
  protocol abstraction (one phase of an algorithm),
* :class:`~repro.local_model.scheduler.Scheduler` -- executes phases round by
  round and accumulates :class:`~repro.local_model.metrics.RunMetrics`,
* :class:`~repro.local_model.batched.BatchedScheduler` -- the batched round
  engine, a drop-in replacement producing bit-identical results over a flat
  CSR representation (the process default),
* :class:`~repro.local_model.vectorized.VectorizedScheduler` -- the
  vectorized color-phase engine: declared pure-color phases run as numpy
  kernels over the CSR arrays, everything else falls back to the batched
  path (select any engine via
  :func:`~repro.local_model.engine.make_scheduler` / ``engine=`` arguments),
* :class:`~repro.local_model.compiled.CompiledScheduler` -- the compiled
  multi-core engine: the vectorized engine plus fused numba / C-extension
  kernels (see :mod:`repro.local_model.kernels`) for the per-round hot
  loops, with a per-phase numpy fallback,
* :func:`~repro.local_model.line_graph_sim.simulate_on_line_graph` -- the
  Lemma 5.2 simulation of an algorithm for ``L(G)`` on the network ``G``.
"""

from repro.local_model.algorithm import (
    SILENT,
    BroadcastPhase,
    LocalView,
    PhasePipeline,
    SynchronousPhase,
)
from repro.local_model import kernels
from repro.local_model.batched import BatchedScheduler, NetworkLike
from repro.local_model.compiled import CompiledScheduler
from repro.local_model.engine import (
    available_engines,
    default_engine,
    make_scheduler,
    resolve_engine,
    set_default_engine,
    use_engine,
)
from repro.local_model.fast_network import FastNetwork, fast_view
from repro.local_model.line_csr import LineGraphMeta, build_line_graph_fast, line_meta_for
from repro.local_model.messages import Message, payload_size_words
from repro.local_model.metrics import RunMetrics
from repro.local_model.network import Network, node_sort_key
from repro.local_model.node import Node
from repro.local_model.scheduler import PhaseResult, Scheduler
from repro.local_model.state_table import StateTable
from repro.local_model.vectorized import VectorContext, VectorizedScheduler
from repro.local_model.line_graph_sim import (
    LineGraphSimulationResult,
    apply_lemma_5_2_accounting,
    simulate_on_line_graph,
)

__all__ = [
    "SILENT",
    "BatchedScheduler",
    "BroadcastPhase",
    "CompiledScheduler",
    "FastNetwork",
    "LineGraphMeta",
    "LineGraphSimulationResult",
    "LocalView",
    "Message",
    "Network",
    "NetworkLike",
    "Node",
    "PhasePipeline",
    "PhaseResult",
    "RunMetrics",
    "Scheduler",
    "StateTable",
    "SynchronousPhase",
    "VectorContext",
    "VectorizedScheduler",
    "apply_lemma_5_2_accounting",
    "available_engines",
    "build_line_graph_fast",
    "default_engine",
    "fast_view",
    "kernels",
    "line_meta_for",
    "make_scheduler",
    "node_sort_key",
    "payload_size_words",
    "resolve_engine",
    "set_default_engine",
    "simulate_on_line_graph",
    "use_engine",
]
