"""Synchronous message-passing substrate (the LOCAL / CONGEST model).

This package implements the execution model the paper assumes: an ``n``-vertex
network in which every vertex hosts a processor with a unique identifier,
communication proceeds in synchronous rounds, and in each round every vertex
may send one message to each of its neighbors.  The running time of an
algorithm is the number of rounds until every vertex has terminated.

The main entry points are:

* :class:`~repro.local_model.network.Network` -- the communication graph,
* :class:`~repro.local_model.algorithm.SynchronousPhase` -- the per-node
  protocol abstraction (one phase of an algorithm),
* :class:`~repro.local_model.scheduler.Scheduler` -- executes phases round by
  round and accumulates :class:`~repro.local_model.metrics.RunMetrics`,
* :func:`~repro.local_model.line_graph_sim.simulate_on_line_graph` -- the
  Lemma 5.2 simulation of an algorithm for ``L(G)`` on the network ``G``.
"""

from repro.local_model.algorithm import LocalView, PhasePipeline, SynchronousPhase
from repro.local_model.messages import Message, payload_size_words
from repro.local_model.metrics import RunMetrics
from repro.local_model.network import Network
from repro.local_model.node import Node
from repro.local_model.scheduler import PhaseResult, Scheduler
from repro.local_model.line_graph_sim import LineGraphSimulationResult, simulate_on_line_graph

__all__ = [
    "LineGraphSimulationResult",
    "LocalView",
    "Message",
    "Network",
    "Node",
    "PhasePipeline",
    "PhaseResult",
    "RunMetrics",
    "Scheduler",
    "SynchronousPhase",
    "payload_size_words",
    "simulate_on_line_graph",
]
