"""The compiled multi-core engine: kernel dispatch over the vectorized one.

:class:`CompiledScheduler` is :class:`~repro.local_model.vectorized.VectorizedScheduler`
with one extra dispatch layer: a vectorized phase whose class has a
registered fused kernel (see :mod:`repro.local_model.kernels`) runs through
the kernel backend (numba or the C/OpenMP extension, whichever the package
resolved); every other phase -- and *every* phase when no backend is
available -- runs the plain numpy ``vector_run`` unchanged, so results are
bit-identical to the ``"vectorized"`` engine in all configurations.

Accounting mirrors the vectorized engine's batched-fallback bookkeeping:

* phases with a registered kernel that had to run on numpy because no
  backend resolved are counted per run in
  ``RunMetrics.compiled_fallback_phase_names`` and cumulatively on the
  scheduler (:attr:`compiled_fallback_phases` /
  :attr:`compiled_fallback_phase_names`);
* phases with no registered kernel are *not* counted -- numpy is their
  native compiled-engine path, exactly like non-vectorized phases are the
  batched engine's native path.
"""

from __future__ import annotations

from typing import List

from repro.local_model import kernels
from repro.local_model.algorithm import SynchronousPhase
from repro.local_model.vectorized import VectorContext, VectorizedScheduler


class CompiledScheduler(VectorizedScheduler):
    """Vectorized engine + fused-kernel dispatch with per-phase numpy fallback."""

    def __init__(self, network, **kwargs) -> None:
        super().__init__(network, **kwargs)
        #: Number of kernel-eligible phase executions that ran on numpy
        #: because no kernel backend was available (cumulative).
        self.compiled_fallback_phases: int = 0
        #: Names of those phases, in execution order.
        self.compiled_fallback_phase_names: List[str] = []
        self._backend = kernels.get_backend()

    @property
    def kernel_backend_name(self):
        """``"numba"`` / ``"cext"`` / ``None`` -- whatever the dispatch resolved."""
        return self._backend.name if self._backend is not None else None

    def _dispatch_vector_run(
        self, phase: SynchronousPhase, vector_run, context: VectorContext
    ) -> None:
        runner = kernels.runner_for(phase)
        if runner is None:
            vector_run(context)
            return
        if self._backend is None:
            self.compiled_fallback_phases += 1
            self.compiled_fallback_phase_names.append(phase.name)
            vector_run(context)
            return
        runner(phase, context, self._backend)

    # The per-run compiled-fallback names are diffed off the cumulative
    # scheduler list around the base-class execution, mirroring how the
    # vectorized engine threads its batched-fallback names into RunMetrics.

    def run(self, algorithm, *args, **kwargs):
        mark = len(self.compiled_fallback_phase_names)
        result = super().run(algorithm, *args, **kwargs)
        result.metrics.compiled_fallback_phase_names.extend(
            self.compiled_fallback_phase_names[mark:]
        )
        return result

    def run_table(self, algorithm, table, *args, **kwargs):
        mark = len(self.compiled_fallback_phase_names)
        table, metrics = super().run_table(algorithm, table, *args, **kwargs)
        metrics.compiled_fallback_phase_names.extend(
            self.compiled_fallback_phase_names[mark:]
        )
        return table, metrics
