"""Message envelopes and message-size accounting.

The paper measures message sizes in bits and distinguishes algorithms that use
``O(log n)``-bit messages from those that need ``O(Delta log n)`` bits.  We
account message sizes in *words*, where one word is an ``O(log n)``-bit
quantity (an identifier, a color, or a counter bounded by a polynomial in
``n``).  A payload's size is the number of such scalar quantities it contains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


def payload_size_words(payload: Any) -> int:
    """Return the size of ``payload`` in ``O(log n)``-bit words.

    Scalars (integers, floats, booleans, ``None``, short strings) count as one
    word.  Containers count as the sum of their elements; mapping keys and
    values are both counted.  This mirrors how the paper charges message size:
    sending ``p`` counters over an edge costs ``p`` words
    (``O(p log n)`` bits).

    Parameters
    ----------
    payload:
        An arbitrary (nested) payload built from scalars, tuples, lists, sets,
        frozensets and dicts.

    Returns
    -------
    int
        The number of words needed to encode the payload.  The empty payload
        (``None``) costs one word (a tag saying "nothing").
    """
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return 1
    if isinstance(payload, (tuple, list, set, frozenset)):
        if not payload:
            return 1
        return sum(payload_size_words(item) for item in payload)
    if isinstance(payload, dict):
        if not payload:
            return 1
        return sum(
            payload_size_words(key) + payload_size_words(value)
            for key, value in payload.items()
        )
    # Unknown objects are conservatively charged one word per attribute-free
    # scalar; callers should prefer plain containers for payloads.
    return 1


@dataclass(frozen=True)
class Message:
    """A single message sent over one edge in one round.

    Attributes
    ----------
    sender:
        Identifier of the sending node.
    receiver:
        Identifier of the receiving node (must be a neighbor of the sender).
    payload:
        Arbitrary payload; its size is charged via :func:`payload_size_words`.
    round_index:
        The round (1-based, within the current phase) in which the message was
        sent.
    """

    sender: Hashable
    receiver: Hashable
    payload: Any
    round_index: int

    @property
    def size_words(self) -> int:
        """Size of the payload in ``O(log n)``-bit words."""
        return payload_size_words(self.payload)
