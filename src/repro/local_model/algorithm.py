"""The per-node protocol abstraction.

A distributed algorithm in the synchronous message-passing model is described
as a sequence of *phases*.  Within a phase, every node repeatedly (a) sends
one message to each neighbor, and (b) processes the messages it received, in
lock-step rounds, until it halts.  The scheduler (see
:mod:`repro.local_model.scheduler`) drives all nodes through these rounds and
measures rounds, messages, and bandwidth.

Phases only see a :class:`LocalView` of the network: the node's identifier,
its unique id, its list of neighbors, and the globally known quantities the
LOCAL model permits (``n``, the maximum degree bound, and the algorithm's
parameters).  This enforces the information locality the model requires -- a
phase implementation has no way to read another node's state except through
messages.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LocalView:
    """The information a node is allowed to use locally.

    Attributes
    ----------
    node_id:
        The vertex identifier in the communication graph.
    unique_id:
        The distinct identity number from ``{1, ..., n}``.
    neighbors:
        The identifiers of adjacent vertices, in deterministic order.
    globals:
        Globally known quantities (``n``, ``max_degree``, and any parameters
        passed to the algorithm).  In the LOCAL model these are assumed to be
        known to every processor before the computation starts.
    """

    node_id: Hashable
    unique_id: int
    neighbors: Tuple[Hashable, ...]
    globals: Mapping[str, Any]

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)


class SynchronousPhase(abc.ABC):
    """One phase of a synchronous distributed algorithm.

    Subclasses implement the three per-node callbacks.  The scheduler invokes
    them as follows::

        initialize(view, state)                     # before round 1
        for round_index in 1, 2, ...:
            outbox = send(view, state, round_index)      # for every live node
            ... messages are delivered ...
            halted = receive(view, state, inbox, round_index)
        finalize(view, state)                       # after every node halted

    ``state`` is the node's mutable dictionary; it is shared across the phases
    of a :class:`PhasePipeline`, which is how later phases consume the outputs
    (e.g. colors) produced by earlier ones.
    """

    #: Human-readable phase name used in metrics breakdowns.
    name: str = "phase"

    def initialize(self, view: LocalView, state: Dict[str, Any]) -> None:
        """Set up per-node state before the first round (default: no-op)."""

    @abc.abstractmethod
    def send(
        self, view: LocalView, state: Dict[str, Any], round_index: int
    ) -> Mapping[Hashable, Any]:
        """Return the messages to send this round, keyed by neighbor id.

        Returning an empty mapping means the node stays silent this round.
        Keys that are not neighbors of the node cause the scheduler to raise
        :class:`~repro.exceptions.SimulationError`.
        """

    @abc.abstractmethod
    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:
        """Process this round's inbox; return ``True`` to halt the node."""

    def finalize(self, view: LocalView, state: Dict[str, Any]) -> None:
        """Post-process state once every node has halted (default: no-op)."""

    def max_rounds(self, n: int, max_degree: int) -> int:
        """Safety bound on the number of rounds this phase may take.

        The scheduler aborts with :class:`~repro.exceptions.RoundLimitExceeded`
        if the phase exceeds the bound; the default is generous.
        """
        return max(16, 4 * n + 16)


class _SilentSentinel:
    """Sentinel returned by :meth:`BroadcastPhase.broadcast` to stay silent."""

    _instance: Optional["_SilentSentinel"] = None

    def __new__(cls) -> "_SilentSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "SILENT"


#: Return this from :meth:`BroadcastPhase.broadcast` to send nothing this round.
SILENT = _SilentSentinel()


class BroadcastPhase(SynchronousPhase):
    """A phase that sends the *same* payload to every neighbor each round.

    Almost every routine in this package (Linial recoloring, color reduction,
    the defective polynomial steps, the ``psi``-selection loop) announces one
    value -- typically the node's current color -- to all neighbors at once.
    Declaring that structure lets the batched scheduler skip the per-neighbor
    outbox dictionaries entirely: the payload is built once, its size is
    charged once per neighbor arithmetically, and delivery writes straight
    into the neighbors' inboxes.  The reference scheduler keeps using
    :meth:`send`, which is derived from :meth:`broadcast` here, so both
    execution paths run the exact same per-node logic.

    Subclasses implement :meth:`broadcast` instead of :meth:`send` and return
    :data:`SILENT` to stay quiet for a round.  The payload must be treated as
    immutable by receivers -- the same object is delivered to every neighbor.
    """

    #: Marker the batched scheduler checks to take the broadcast fast path.
    supports_broadcast: bool = True

    @abc.abstractmethod
    def broadcast(self, view: LocalView, state: Dict[str, Any], round_index: int) -> Any:
        """Return this round's payload for all neighbors, or :data:`SILENT`."""

    def send(
        self, view: LocalView, state: Dict[str, Any], round_index: int
    ) -> Mapping[Hashable, Any]:
        payload = self.broadcast(view, state, round_index)
        if payload is SILENT:
            return {}
        return {neighbor: payload for neighbor in view.neighbors}


class LocalComputationPhase(SynchronousPhase):
    """A zero-round phase: pure local post-processing of node state.

    Used for steps the paper charges zero rounds for (e.g. merging the
    colorings of the subgraphs ``G_1, ..., G_p`` into a unified coloring by
    adding palette offsets).
    """

    name = "local-computation"

    #: Marker the scheduler checks to skip the send/receive loop entirely.
    zero_rounds: bool = True

    def send(
        self, view: LocalView, state: Dict[str, Any], round_index: int
    ) -> Mapping[Hashable, Any]:  # pragma: no cover - never called
        return {}

    def receive(
        self,
        view: LocalView,
        state: Dict[str, Any],
        inbox: Mapping[Hashable, Any],
        round_index: int,
    ) -> bool:  # pragma: no cover - never called
        return True

    @abc.abstractmethod
    def compute(self, view: LocalView, state: Dict[str, Any]) -> None:
        """Transform the node's state locally (no communication)."""

    def max_rounds(self, n: int, max_degree: int) -> int:
        return 0


class PhasePipeline:
    """An ordered sequence of phases executed on the same node states.

    The pipeline is the unit the scheduler runs: phase ``i+1`` starts only
    after every node has halted in phase ``i`` (a global synchronization the
    paper also assumes implicitly between the steps of its procedures, since
    each step's round count is known to all nodes in advance).
    """

    def __init__(self, phases: Sequence[SynchronousPhase], name: Optional[str] = None) -> None:
        self._phases: List[SynchronousPhase] = list(phases)
        self.name = name or "+".join(phase.name for phase in self._phases)

    @property
    def phases(self) -> Tuple[SynchronousPhase, ...]:
        """The phases in execution order."""
        return tuple(self._phases)

    def extended(self, *more: SynchronousPhase) -> "PhasePipeline":
        """Return a new pipeline with extra phases appended."""
        return PhasePipeline(self._phases + list(more), name=self.name)

    def __len__(self) -> int:
        return len(self._phases)

    def __iter__(self):
        return iter(self._phases)
