"""The communication graph.

A :class:`Network` is an undirected, unweighted graph ``G = (V, E)`` together
with the assignment of distinct identity numbers from ``{1, ..., n}`` to its
vertices, exactly as the paper's model requires.  It is the object the
synchronous scheduler executes phases on.

Networks are immutable once constructed.  Derived networks (for instance the
vertex-disjoint subgraphs Procedure Legal-Color recurses on) are obtained via
:meth:`Network.filtered_by_edge` or :meth:`Network.induced_subgraph`; derived
networks preserve the original unique identifiers so that identifier-based
tie-breaking stays consistent across recursion levels.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from repro.exceptions import InvalidParameterError
from repro.local_model.node import Node


def node_sort_key(node: Hashable) -> Tuple:
    """A total order over the identifier types used in this package.

    Integers (and floats) compare numerically, strings lexicographically, and
    tuples element-wise by the same rule; distinct types are segregated so the
    comparison never raises.  Unlike ordering by ``repr`` -- which puts ``10``
    before ``2`` and interleaves tuples with integers arbitrarily -- this key
    is stable under renaming-free changes of ``repr`` and orders numeric
    identifiers numerically.
    """
    if isinstance(node, tuple):
        return (2, tuple(node_sort_key(item) for item in node))
    if isinstance(node, (bool, int, float)):
        return (0, node)
    if isinstance(node, str):
        return (1, node)
    return (3, repr(node))


class Network:
    """An undirected communication graph with unique node identifiers.

    Parameters
    ----------
    adjacency:
        Mapping from node identifier to an iterable of its neighbors.  The
        mapping must be symmetric; missing reverse entries are added
        automatically.  Self-loops are rejected.
    unique_ids:
        Optional mapping from node identifier to the distinct identity number
        in ``{1, ..., n}``.  When omitted, identifiers are assigned by sorting
        node identifiers with :func:`node_sort_key` (numeric for integers,
        element-wise for tuples -- deterministic for the identifier types used
        in this package).  Node, neighbor and edge orderings all follow the
        unique identifiers, so tie-breaking stays consistent across derived
        networks.
    """

    def __init__(
        self,
        adjacency: Mapping[Hashable, Iterable[Hashable]],
        unique_ids: Optional[Mapping[Hashable, int]] = None,
    ) -> None:
        adj: Dict[Hashable, set] = {node: set() for node in adjacency}
        for node, neighbors in adjacency.items():
            for neighbor in neighbors:
                if neighbor == node:
                    raise InvalidParameterError(
                        f"self-loop at node {node!r} is not allowed in the LOCAL model"
                    )
                if neighbor not in adj:
                    adj[neighbor] = set()
                adj[node].add(neighbor)
                adj[neighbor].add(node)

        # Nodes, neighbor lists and edges are all ordered by the assigned
        # unique identifiers (NOT by repr, whose lexicographic order puts 10
        # before 2 and is fragile for mixed int/tuple identifier sets).  When
        # no identifiers are supplied they are assigned along the
        # node_sort_key order, so identifier order and key order coincide.
        if unique_ids is None:
            self._order: List[Hashable] = sorted(adj, key=node_sort_key)
            self._unique_ids: Dict[Hashable, int] = {
                node: index + 1 for index, node in enumerate(self._order)
            }
        else:
            missing = [node for node in adj if node not in unique_ids]
            if missing:
                raise InvalidParameterError(
                    f"unique_ids missing entries for nodes: {missing[:5]!r}"
                )
            ids = [unique_ids[node] for node in adj]
            if len(set(ids)) != len(ids):
                raise InvalidParameterError("unique_ids must be distinct")
            self._unique_ids = {node: int(unique_ids[node]) for node in adj}
            self._order = sorted(adj, key=self._unique_ids.__getitem__)

        uid = self._unique_ids
        self._adjacency: Dict[Hashable, Tuple[Hashable, ...]] = {
            node: tuple(sorted(adj[node], key=uid.__getitem__)) for node in self._order
        }
        self._edges: Tuple[Tuple[Hashable, Hashable], ...] = tuple(
            sorted(
                {
                    (u, v) if uid[u] <= uid[v] else (v, u)
                    for u in self._order
                    for v in self._adjacency[u]
                },
                key=lambda edge: (uid[edge[0]], uid[edge[1]]),
            )
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "Network":
        """Build a network from a :class:`networkx.Graph` (edges only)."""
        adjacency = {node: list(graph.neighbors(node)) for node in graph.nodes}
        return cls(adjacency)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        isolated_nodes: Iterable[Hashable] = (),
    ) -> "Network":
        """Build a network from an edge list plus optional isolated vertices."""
        adjacency: Dict[Hashable, List[Hashable]] = {}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        for node in isolated_nodes:
            adjacency.setdefault(node, [])
        return cls(adjacency)

    def to_networkx(self) -> nx.Graph:
        """Export the network as a :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(self._order)
        graph.add_edges_from(self._edges)
        return graph

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of vertices ``n``."""
        return len(self._order)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self._edges)

    @property
    def max_degree(self) -> int:
        """The maximum degree ``Delta(G)`` (0 for the empty graph)."""
        if not self._order:
            return 0
        return max(len(self._adjacency[node]) for node in self._order)

    def nodes(self) -> Tuple[Hashable, ...]:
        """All node identifiers in deterministic order."""
        return tuple(self._order)

    def edges(self) -> Tuple[Tuple[Hashable, Hashable], ...]:
        """All edges as canonical (sorted) pairs, in deterministic order."""
        return self._edges

    def neighbors(self, node: Hashable) -> Tuple[Hashable, ...]:
        """Neighbors of ``node`` in deterministic order."""
        return self._adjacency[node]

    def degree(self, node: Hashable) -> int:
        """Degree of ``node``."""
        return len(self._adjacency[node])

    def has_node(self, node: Hashable) -> bool:
        """Whether ``node`` belongs to the network."""
        return node in self._adjacency

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Whether the undirected edge ``(u, v)`` belongs to the network."""
        return v in self._adjacency.get(u, ())

    def unique_id(self, node: Hashable) -> int:
        """The distinct identity number of ``node`` (from ``{1, ..., n}``)."""
        return self._unique_ids[node]

    def unique_ids(self) -> Dict[Hashable, int]:
        """A copy of the full identifier assignment."""
        return dict(self._unique_ids)

    def __contains__(self, node: Hashable) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._order)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(n={self.num_nodes}, m={self.num_edges}, max_degree={self.max_degree})"

    # ------------------------------------------------------------------ #
    # Derived networks
    # ------------------------------------------------------------------ #

    def create_nodes(self) -> Dict[Hashable, Node]:
        """Instantiate a fresh :class:`Node` object for every vertex."""
        return {
            node: Node(
                node_id=node,
                unique_id=self._unique_ids[node],
                neighbors=self._adjacency[node],
            )
            for node in self._order
        }

    def filtered_by_edge(
        self, keep_edge: Callable[[Hashable, Hashable], bool]
    ) -> "Network":
        """Return a spanning subnetwork keeping only edges where ``keep_edge`` holds.

        All vertices are preserved (possibly as isolated vertices), and unique
        identifiers are inherited from this network.  This is the primitive
        used to execute Procedure Legal-Color's recursion: all subgraphs of a
        recursion level are obtained by dropping the edges that cross between
        different color classes, and the phases of that level then run on the
        filtered network -- which is exactly the "in parallel on the
        subgraphs" execution of the paper.
        """
        adjacency = {
            node: [
                neighbor
                for neighbor in self._adjacency[node]
                if keep_edge(node, neighbor)
            ]
            for node in self._order
        }
        return Network(adjacency, unique_ids=self._unique_ids)

    def induced_subgraph(self, nodes: Iterable[Hashable]) -> "Network":
        """Return the subgraph induced by ``nodes`` (unique ids inherited)."""
        keep = set(nodes)
        unknown = keep - set(self._order)
        if unknown:
            raise InvalidParameterError(
                f"unknown nodes in induced_subgraph: {sorted(map(repr, unknown))[:5]}"
            )
        adjacency = {
            node: [n for n in self._adjacency[node] if n in keep]
            for node in self._order
            if node in keep
        }
        unique_ids = {node: self._unique_ids[node] for node in adjacency}
        return Network(adjacency, unique_ids=unique_ids)
