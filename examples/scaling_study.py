#!/usr/bin/env python3
"""Scaling study: rounds versus maximum degree (a miniature Table 1).

Sweeps the maximum degree Delta on random regular graphs and prints, for each
Delta, the measured rounds and colors of

* the paper's O(Delta^{1+eta})-edge-coloring (Theorem 5.5(2)),
* the paper's O(Delta)-edge-coloring (Theorem 5.5(1)),
* the Panconesi-Rizzi-style (2 Delta - 1) baseline,

plus the paper's analytic curves -- the reproducible essence of Table 1.
A larger sweep (and the crossover analysis) is produced by
``pytest benchmarks/bench_table1_deterministic_comparison.py --benchmark-only -s``.

Run with:  python examples/scaling_study.py
"""

from __future__ import annotations

from repro import color_edges, graphs
from repro.analysis import format_table, rounds_new_superlinear, rounds_panconesi_rizzi
from repro.baselines import panconesi_rizzi_edge_coloring
from repro.verification import assert_legal_edge_coloring


def main() -> None:
    n = 48
    rows = []
    for degree in (4, 8, 12, 16):
        network = graphs.random_regular(n, degree, seed=degree)
        fast = color_edges(network, quality="superlinear", route="direct")
        linear = color_edges(network, quality="linear", route="direct")
        baseline = panconesi_rizzi_edge_coloring(network)
        for result in (fast, linear, baseline):
            assert_legal_edge_coloring(network, result.edge_colors)
        rows.append(
            [
                degree,
                fast.metrics.rounds,
                fast.colors_used,
                linear.metrics.rounds,
                linear.colors_used,
                baseline.metrics.rounds,
                baseline.colors_used,
                round(rounds_new_superlinear(degree, n), 1),
                round(rounds_panconesi_rizzi(degree, n), 1),
            ]
        )

    print(
        format_table(
            [
                "Delta",
                "new-fast rounds",
                "colors",
                "new-linear rounds",
                "colors",
                "baseline rounds",
                "colors",
                "new analytic",
                "PR analytic",
            ],
            rows,
            title=f"Rounds vs. Delta on random regular graphs (n = {n})",
        )
    )
    print(
        "\nAs Delta grows the baseline's rounds grow roughly linearly with Delta,"
        " while the new algorithm's grow noticeably more slowly (its cost is"
        " dominated by the constant-size bottom level of the recursion) -- the"
        " qualitative shape of the paper's Table 1; the asymptotic gap widens"
        " further with Delta."
    )


if __name__ == "__main__":
    main()
