#!/usr/bin/env python3
"""Scaling study: rounds versus maximum degree (a miniature Table 1).

Sweeps the maximum degree Delta on random regular graphs and prints, for each
Delta, the measured rounds and colors of

* the paper's O(Delta^{1+eta})-edge-coloring (Theorem 5.5(2)),
* the paper's O(Delta)-edge-coloring (Theorem 5.5(1)),
* the Panconesi-Rizzi-style (2 Delta - 1) baseline,

plus the paper's analytic curves -- the reproducible essence of Table 1.

The sweep runs through :class:`repro.experiments.ExperimentRunner`: every
(degree, algorithm) pair becomes a picklable scenario, the scenarios are
sharded across worker processes (each on the batched round engine, with the
coloring verified in-worker), and the results are memoized in an on-disk
cache -- re-running this script is nearly instantaneous.  A larger sweep (and
the crossover analysis) is produced by
``pytest benchmarks/bench_table1_deterministic_comparison.py --benchmark-only -s``.

A second sweep times one larger instance on the batched / vectorized /
compiled engines (identical colorings asserted) and then lets the portfolio
facade decide, printing the decision together with the kernel backend and
thread count it was made against.

Run with:  python examples/scaling_study.py
"""

from __future__ import annotations

import time

import repro
from repro import graphs
from repro.analysis import format_table, rounds_new_superlinear, rounds_panconesi_rizzi
from repro.experiments import ExperimentRunner, GraphSpec, Scenario, default_cache_dir

#: (row label, experiment algorithm, parameters) -- the three Table 1 columns.
ALGORITHMS = (
    ("fast", "edge_coloring", {"quality": "superlinear", "route": "direct"}),
    ("linear", "edge_coloring", {"quality": "linear", "route": "direct"}),
    ("baseline", "panconesi_rizzi", {}),
)

DEGREES = (4, 8, 12, 16)
N = 48

#: Instance for the engine sweep -- large enough that the array engines
#: visibly win, small enough to stay interactive.
ENGINE_SWEEP_N = 4096
ENGINE_SWEEP_DEGREE = 16


def build_scenarios() -> list:
    """One scenario per (degree, algorithm), on the batched engine.

    The workload graphs use the array-built fast backend (part of the cache
    key, so these results never alias legacy-built ones); the paper
    algorithms then verify their colorings through the masked-CSR oracles.
    """
    scenarios = []
    for degree in DEGREES:
        spec = GraphSpec(
            "random_regular", n=N, degree=degree, seed=degree, backend="fast"
        )
        for label, algorithm, params in ALGORITHMS:
            scenarios.append(
                Scenario.make(
                    name=f"{label}-d{degree}",
                    graph=spec,
                    algorithm=algorithm,
                    params=params,
                )
            )
    return scenarios


def engine_sweep() -> None:
    """Time one instance across the engines, then show the portfolio's pick."""
    network = graphs.random_regular(
        ENGINE_SWEEP_N, ENGINE_SWEEP_DEGREE, seed=7, backend="fast"
    )
    rows = []
    colors = None
    for engine in ("batched", "vectorized", "compiled"):
        started = time.perf_counter()
        result = repro.color_graph(network, engine=engine, seed=1)
        elapsed = time.perf_counter() - started
        if colors is None:
            colors = result.colors
        # The engines are bit-identical; the override only changes the clock.
        assert result.colors == colors
        rows.append([engine, round(elapsed, 3), result.colors_used])
    print(
        format_table(
            ["engine", "seconds", "colors"],
            rows,
            title=(
                "One instance, three engines (random_regular "
                f"n = {ENGINE_SWEEP_N}, Delta = {ENGINE_SWEEP_DEGREE})"
            ),
        )
    )

    auto = repro.color_graph(network, seed=1)
    decision = auto.decision
    print(f"\nPortfolio decision: engine='{decision.engine}'")
    print(f"  why: {decision.reasons['engine']}")
    print(
        f"  kernel backend: {auto.kernel_backend or 'none resolved'}; "
        f"kernel threads: {auto.kernel_threads}"
    )


def main() -> None:
    runner = ExperimentRunner(cache_dir=default_cache_dir())
    results = {result.name: result for result in runner.run(build_scenarios())}

    rows = []
    for degree in DEGREES:
        fast = results[f"fast-d{degree}"]
        linear = results[f"linear-d{degree}"]
        baseline = results[f"baseline-d{degree}"]
        # Every worker verified its coloring before reporting.
        assert fast.verified and linear.verified and baseline.verified
        rows.append(
            [
                degree,
                fast.rounds,
                fast.colors_used,
                linear.rounds,
                linear.colors_used,
                baseline.rounds,
                baseline.colors_used,
                round(rounds_new_superlinear(degree, N), 1),
                round(rounds_panconesi_rizzi(degree, N), 1),
            ]
        )

    print(
        format_table(
            [
                "Delta",
                "new-fast rounds",
                "colors",
                "new-linear rounds",
                "colors",
                "baseline rounds",
                "colors",
                "new analytic",
                "PR analytic",
            ],
            rows,
            title=f"Rounds vs. Delta on random regular graphs (n = {N})",
        )
    )
    cached = sum(1 for result in results.values() if result.cached)
    print(
        f"\n({len(results)} scenarios via ExperimentRunner; {cached} served from "
        f"the cache at {default_cache_dir()}.)"
    )
    print(
        "\nAs Delta grows the baseline's rounds grow roughly linearly with Delta,"
        " while the new algorithm's grow noticeably more slowly (its cost is"
        " dominated by the constant-size bottom level of the recursion) -- the"
        " qualitative shape of the paper's Table 1; the asymptotic gap widens"
        " further with Delta."
    )

    print()
    engine_sweep()


if __name__ == "__main__":
    main()
