#!/usr/bin/env python3
"""Conflict-free job scheduling on shared resources via hypergraph edge coloring.

Section 1.2 of the paper points out that the line graph of an r-hypergraph has
neighborhood independence at most r, so the vertex-coloring algorithms for
bounded-neighborhood-independence graphs schedule *hypergraph* edges as well:
if every job needs up to r resources simultaneously, two jobs conflict exactly
when they share a resource, and a legal coloring of the conflict graph is a
conflict-free schedule whose length is the number of colors.

This example generates a random 3-hypergraph workload (jobs needing up to 3
resources), colors its line graph with the Theorem 4.8(2) algorithm (c = 3),
verifies the schedule, and reports its length against the trivial sequential
bound.

Run with:  python examples/hypergraph_resource_allocation.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import color_vertices
from repro.graphs.hypergraphs import hypergraph_line_graph, random_r_hypergraph
from repro.graphs.properties import has_neighborhood_independence_at_most
from repro.verification import assert_legal_vertex_coloring


def main() -> None:
    num_resources = 30
    num_jobs = 80
    resources_per_job = 3

    workload = random_r_hypergraph(
        num_vertices=num_resources,
        num_edges=num_jobs,
        rank=resources_per_job,
        seed=11,
    )
    conflict_graph = hypergraph_line_graph(workload)
    print(
        f"workload: {workload.num_edges} jobs over {workload.num_vertices} resources, "
        f"each job uses up to {resources_per_job} resources"
    )
    print(
        f"conflict graph: {conflict_graph.num_nodes} jobs, max conflicts per job = "
        f"{conflict_graph.max_degree}"
    )

    # The structural fact the paper exploits: I(L(H)) <= r.
    assert has_neighborhood_independence_at_most(conflict_graph, resources_per_job)
    print(f"verified: neighborhood independence of the conflict graph <= {resources_per_job}")

    result = color_vertices(conflict_graph, c=resources_per_job, quality="superlinear")
    assert_legal_vertex_coloring(conflict_graph, result.colors)

    slots = defaultdict(list)
    for job, slot in result.colors.items():
        slots[slot].append(job)

    print("\ndistributed schedule (Theorem 4.8(2), c = 3):")
    print(f"  schedule length (colors used) : {len(slots)}")
    print(f"  palette bound                 : {result.palette}")
    print(f"  rounds to compute             : {result.metrics.rounds}")
    busiest = max(len(jobs) for jobs in slots.values())
    print(f"  busiest slot                  : {busiest} jobs in parallel")
    print(f"  sequential schedule length    : {workload.num_edges} (one job at a time)")

    # Sanity: no two jobs in the same slot share a resource.
    for slot, jobs in slots.items():
        used = set()
        for job in jobs:
            resources = workload.edges[job]
            assert not (resources & used), f"slot {slot} double-books a resource"
            used |= resources

    parallelism = workload.num_edges / len(slots)
    print(f"\nAverage parallelism achieved: {parallelism:.1f} jobs per slot.")


if __name__ == "__main__":
    main()
