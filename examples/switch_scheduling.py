#!/usr/bin/env python3
"""Switch scheduling / packet routing via distributed edge coloring.

The paper's introduction motivates edge coloring with job-shop scheduling,
packet routing and resource allocation: in an input-queued switch (or any
crossbar-like interconnect), the demand between input and output ports forms a
bipartite multigraph, and a legal edge coloring is exactly a schedule -- each
color class is a matching that can be transferred in one time slot, so the
number of colors is the schedule length.

This example builds a random bipartite Delta-regular demand graph, computes a
schedule with (a) the paper's distributed algorithm and (b) the sequential
greedy oracle, validates both schedules, and reports schedule length versus
the optimum (which equals Delta for bipartite graphs, by Konig's theorem).
It then lets the demand churn -- flows arrive and depart in batches -- and
keeps a port-conflict coloring current with a :class:`repro.dynamic.
DynamicColoring` session, comparing the amortized incremental repair cost
against recomputing from scratch on every batch.

Run with:  python examples/switch_scheduling.py
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro import color_edges, graphs
from repro.baselines import greedy_sequential_edge_coloring
from repro.dynamic import DynamicColoring
from repro.verification import assert_legal_edge_coloring


def schedule_from_coloring(edge_colors) -> dict:
    """Group edges by color: each color class is one time slot (a matching)."""
    slots = defaultdict(list)
    for edge, color in edge_colors.items():
        slots[color].append(edge)
    return dict(sorted(slots.items()))


def verify_schedule_is_matchings(slots: dict) -> None:
    """Every slot must be a matching: no port appears twice within a slot."""
    for slot, edges in slots.items():
        ports = [endpoint for edge in edges for endpoint in edge]
        if len(ports) != len(set(ports)):
            raise AssertionError(f"slot {slot} is not a matching")


def main() -> None:
    ports = 16
    demand_degree = 8
    # backend="fast" builds the demand graph as CSR arrays (exact degrees,
    # no legacy Network materialized); the whole pipeline below -- line
    # graph, coloring, verification -- stays on the arrays.
    network = graphs.random_bipartite_regular(
        ports, demand_degree, seed=3, backend="fast"
    )
    print(
        f"switch demand graph: {ports} input ports x {ports} output ports, "
        f"{network.num_edges} demands, Delta = {network.max_degree}"
    )
    print(f"optimal schedule length (Konig): {network.max_degree} slots\n")

    # Distributed schedule: O(Delta) colors in few rounds, computed by the
    # ports themselves with O(log n)-bit messages.  The root `color_edges`
    # is the portfolio facade -- we pin the paper's linear preset and direct
    # route and let it choose the execution engine for this instance size.
    distributed = color_edges(network, quality="linear", route="direct")
    assert_legal_edge_coloring(network, distributed.color_column)  # masked-CSR check
    slots = schedule_from_coloring(distributed.edge_colors)
    verify_schedule_is_matchings(slots)
    print("distributed schedule (paper, Theorem 5.5(1)):")
    print(f"  slots (colors)      : {distributed.colors_used}")
    print(f"  rounds to compute   : {distributed.metrics.rounds}")
    print(
        f"  engine (portfolio)  : {distributed.decision.engine}; pinned: "
        f"{', '.join(distributed.decision.overrides)}"
    )
    print(f"  largest slot size   : {max(len(edges) for edges in slots.values())} transfers")

    # Centralized greedy oracle for comparison.
    greedy = greedy_sequential_edge_coloring(network)
    assert_legal_edge_coloring(network, greedy)
    greedy_slots = schedule_from_coloring(greedy)
    verify_schedule_is_matchings(greedy_slots)
    print("\ncentralized greedy oracle:")
    print(f"  slots (colors)      : {len(greedy_slots)}")

    overhead = distributed.colors_used / network.max_degree
    print(
        f"\nThe distributed schedule uses {overhead:.1f}x the optimal number of slots, "
        "but is computed by the switch ports themselves in a handful of communication "
        "rounds, with no central arbiter."
    )

    print("\nfirst three slots of the distributed schedule:")
    for slot, edges in list(slots.items())[:3]:
        rendered = ", ".join(
            f"{u[1]}->{v[1]}" for u, v in (sorted(edge, key=str) for edge in edges)
        )
        print(f"  slot {slot:3d}: {rendered}")

    churn_demo()


def churn_demo() -> None:
    """Keep a flow-conflict coloring current while the demand churns.

    Real switch workloads are not static: flows arrive, depart and get
    re-routed.  Here each *flow* is a vertex of a conflict graph (two flows
    conflict when they share a port), and every batch of re-routes shows up
    as a handful of conflict-edge insertions/removals.  A
    ``strategy="incremental"`` :class:`~repro.dynamic.DynamicColoring`
    session patches the CSR and repairs only the conflicted flows, instead
    of recomputing the whole assignment -- the differential ``recompute``
    session below is fed the identical batches to show what that saves.
    """
    from repro.graphs.line_graph import line_graph_network

    ports, demand_degree, steps = 64, 8, 6
    demands = graphs.random_bipartite_regular(
        ports, demand_degree, seed=3, backend="fast"
    )
    conflicts = line_graph_network(demands)
    incremental = DynamicColoring(conflicts, c=2, engine="vectorized")
    recompute = DynamicColoring(
        conflicts, c=2, strategy="recompute", engine="vectorized"
    )
    print(
        f"\nchurning demand: {demands.num_edges} flows, "
        f"{incremental.network.num_edges} port conflicts, "
        f"{steps} re-route batches"
    )

    rng = np.random.default_rng(7)
    n = incremental.network.num_nodes
    batch = max(1, incremental.network.num_edges // 100)
    inc_seconds = rec_seconds = 0.0
    repaired = 0
    for _ in range(steps):
        fast = incremental.network
        forward = fast.rows_np < fast.indices_np
        edge_u, edge_v = fast.rows_np[forward], fast.indices_np[forward]
        pick = rng.integers(0, len(edge_u), size=batch)
        removed = (edge_u[pick].copy(), edge_v[pick].copy())
        add_u = rng.integers(0, n, size=batch)
        add_v = rng.integers(0, n, size=batch)
        loopless = add_u != add_v
        added = (add_u[loopless], add_v[loopless])

        started = time.perf_counter()
        report = incremental.apply_updates(added=added, removed=removed)
        inc_seconds += time.perf_counter() - started
        started = time.perf_counter()
        recompute.apply_updates(added=added, removed=removed)
        rec_seconds += time.perf_counter() - started

        incremental.verify()  # legal after every batch
        recompute.verify()
        repaired += report.repaired_nodes

    print(f"  flows repaired      : {repaired} (of {n * steps} flow-slots)")
    print(f"  incremental / batch : {1000 * inc_seconds / steps:.2f} ms")
    print(f"  recompute / batch   : {1000 * rec_seconds / steps:.2f} ms")
    print(
        f"  amortized advantage : {rec_seconds / max(inc_seconds, 1e-9):.1f}x "
        "cheaper per batch, verified legal after every batch"
    )


if __name__ == "__main__":
    main()
