#!/usr/bin/env python3
"""Switch scheduling / packet routing via distributed edge coloring.

The paper's introduction motivates edge coloring with job-shop scheduling,
packet routing and resource allocation: in an input-queued switch (or any
crossbar-like interconnect), the demand between input and output ports forms a
bipartite multigraph, and a legal edge coloring is exactly a schedule -- each
color class is a matching that can be transferred in one time slot, so the
number of colors is the schedule length.

This example builds a random bipartite Delta-regular demand graph, computes a
schedule with (a) the paper's distributed algorithm and (b) the sequential
greedy oracle, validates both schedules, and reports schedule length versus
the optimum (which equals Delta for bipartite graphs, by Konig's theorem).

Run with:  python examples/switch_scheduling.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import color_edges, graphs
from repro.baselines import greedy_sequential_edge_coloring
from repro.verification import assert_legal_edge_coloring


def schedule_from_coloring(edge_colors) -> dict:
    """Group edges by color: each color class is one time slot (a matching)."""
    slots = defaultdict(list)
    for edge, color in edge_colors.items():
        slots[color].append(edge)
    return dict(sorted(slots.items()))


def verify_schedule_is_matchings(slots: dict) -> None:
    """Every slot must be a matching: no port appears twice within a slot."""
    for slot, edges in slots.items():
        ports = [endpoint for edge in edges for endpoint in edge]
        if len(ports) != len(set(ports)):
            raise AssertionError(f"slot {slot} is not a matching")


def main() -> None:
    ports = 16
    demand_degree = 8
    # backend="fast" builds the demand graph as CSR arrays (exact degrees,
    # no legacy Network materialized); the whole pipeline below -- line
    # graph, coloring, verification -- stays on the arrays.
    network = graphs.random_bipartite_regular(
        ports, demand_degree, seed=3, backend="fast"
    )
    print(
        f"switch demand graph: {ports} input ports x {ports} output ports, "
        f"{network.num_edges} demands, Delta = {network.max_degree}"
    )
    print(f"optimal schedule length (Konig): {network.max_degree} slots\n")

    # Distributed schedule: O(Delta) colors in few rounds, computed by the
    # ports themselves with O(log n)-bit messages.
    distributed = color_edges(network, quality="linear", route="direct")
    assert_legal_edge_coloring(network, distributed.color_column)  # masked-CSR check
    slots = schedule_from_coloring(distributed.edge_colors)
    verify_schedule_is_matchings(slots)
    print("distributed schedule (paper, Theorem 5.5(1)):")
    print(f"  slots (colors)      : {distributed.colors_used}")
    print(f"  rounds to compute   : {distributed.metrics.rounds}")
    print(f"  largest slot size   : {max(len(edges) for edges in slots.values())} transfers")

    # Centralized greedy oracle for comparison.
    greedy = greedy_sequential_edge_coloring(network)
    assert_legal_edge_coloring(network, greedy)
    greedy_slots = schedule_from_coloring(greedy)
    verify_schedule_is_matchings(greedy_slots)
    print("\ncentralized greedy oracle:")
    print(f"  slots (colors)      : {len(greedy_slots)}")

    overhead = distributed.colors_used / network.max_degree
    print(
        f"\nThe distributed schedule uses {overhead:.1f}x the optimal number of slots, "
        "but is computed by the switch ports themselves in a handful of communication "
        "rounds, with no central arbiter."
    )

    print("\nfirst three slots of the distributed schedule:")
    for slot, edges in list(slots.items())[:3]:
        rendered = ", ".join(
            f"{u[1]}->{v[1]}" for u, v in (sorted(edge, key=str) for edge in edges)
        )
        print(f"  slot {slot:3d}: {rendered}")


if __name__ == "__main__":
    main()
