#!/usr/bin/env python3
"""Quickstart: distributed edge coloring of a random graph.

Builds a random regular graph, runs the paper's O(Delta^{1+eta})-edge-coloring
algorithm (Theorem 5.5(2)) on the synchronous message-passing simulator,
verifies that the coloring is legal, and prints the measured cost next to the
(2 Delta - 1)-coloring baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import color_edges, graphs
from repro.baselines import panconesi_rizzi_edge_coloring
from repro.verification import assert_legal_edge_coloring


def main() -> None:
    # A 12-regular communication network on 48 nodes.
    network = graphs.random_regular(n=48, degree=12, seed=7)
    print(f"graph: n={network.num_nodes}, |E|={network.num_edges}, Delta={network.max_degree}")

    # `repro.color_edges` is the auto-tuning portfolio facade: it picks the
    # algorithm, execution engine, quality preset, and route for this
    # instance from a measured cost model, and records every choice.
    auto = color_edges(network)
    decision = auto.decision
    print("\nportfolio decision for this instance:")
    print(
        f"  algorithm={decision.algorithm}, engine={decision.engine}, "
        f"quality={decision.quality}, route={decision.route}"
    )
    print(f"  engine reason      : {decision.reasons['engine']}")

    # The paper's fast tradeoff point, pinned explicitly.  Pinned knobs are
    # passed through untouched and show up in `result.decision.overrides`.
    result = color_edges(network, quality="superlinear", route="direct")
    assert_legal_edge_coloring(network, result.edge_colors)
    print("\nnew algorithm (Theorem 5.5(2)):")
    print(f"  colors used        : {result.colors_used}  (palette bound {result.palette})")
    print(f"  rounds             : {result.metrics.rounds}")
    print(f"  max message size   : {result.metrics.max_message_words} words of O(log n) bits")
    print(f"  recursion levels   : {len(result.levels)}")

    # The classical deterministic baseline: (2 Delta - 1) colors, rounds linear in Delta.
    baseline = panconesi_rizzi_edge_coloring(network)
    assert_legal_edge_coloring(network, baseline.edge_colors)
    print("\nPanconesi-Rizzi-style baseline:")
    print(f"  colors used        : {baseline.colors_used}  (palette bound {baseline.palette})")
    print(f"  rounds             : {baseline.metrics.rounds}")

    speedup = baseline.metrics.rounds / max(1, result.metrics.rounds)
    print(
        f"\nThe new algorithm finished {speedup:.1f}x faster (in rounds) while using "
        f"{result.colors_used} instead of {baseline.colors_used} colors -- the paper's tradeoff."
    )

    # Inspect a few edge colors through the convenience lookup.
    sample_edges = network.edges()[:5]
    print("\nsample edge colors:")
    for u, v in sample_edges:
        print(f"  ({u}, {v}) -> color {result.color_of(u, v)}")


if __name__ == "__main__":
    main()
